exception Corrupt of string

let magic = "MIRAOBJ1"

(* --- primitive writers: zigzag varints and length-prefixed strings --- *)

let put_varint buf n =
  (* zigzag so negative displacements stay compact *)
  let u = (n lsl 1) lxor (n asr 62) in
  let rec go u =
    if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr (u land 0x7f))
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7f)));
      go (u lsr 7)
    end
  in
  go (u land max_int)

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

type reader = { src : string; mutable off : int }

let byte r =
  if r.off >= String.length r.src then raise (Corrupt "unexpected end of object");
  let c = Char.code r.src.[r.off] in
  r.off <- r.off + 1;
  c

let get_varint r =
  let rec go shift acc =
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let u = go 0 0 in
  (u lsr 1) lxor (-(u land 1))

let get_string r =
  let n = get_varint r in
  if n < 0 || r.off + n > String.length r.src then raise (Corrupt "bad string");
  let s = String.sub r.src r.off n in
  r.off <- r.off + n;
  s

let get_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

(* --- instruction encoding --- *)

open Isa

let put_addr buf a =
  put_varint buf a.base;
  (match a.index with
  | None -> put_varint buf (-1)
  | Some i -> put_varint buf i);
  put_varint buf a.scale;
  put_varint buf a.disp

let get_addr r =
  let base = get_varint r in
  let index = match get_varint r with -1 -> None | i -> Some i in
  let scale = get_varint r in
  let disp = get_varint r in
  { base; index; scale; disp }

let put_iop buf = function
  | Reg x ->
      put_varint buf 0;
      put_varint buf x
  | Imm n ->
      put_varint buf 1;
      put_varint buf n

let get_iop r =
  match get_varint r with
  | 0 -> Reg (get_varint r)
  | 1 -> Imm (get_varint r)
  | k -> raise (Corrupt (Printf.sprintf "bad operand kind %d" k))

let cc_code = function E -> 0 | NE -> 1 | L -> 2 | LE -> 3 | G -> 4 | GE -> 5

let cc_of_code = function
  | 0 -> E | 1 -> NE | 2 -> L | 3 -> LE | 4 -> G | 5 -> GE
  | k -> raise (Corrupt (Printf.sprintf "bad condition code %d" k))

let put_insn buf insn =
  let tag t = Buffer.add_char buf (Char.chr t) in
  let rr t a b = tag t; put_varint buf a; put_varint buf b in
  let ri t a op = tag t; put_varint buf a; put_iop buf op in
  let ra t a addr = tag t; put_varint buf a; put_addr buf addr in
  match insn with
  | Movq (d, s) -> ri 0 d s
  | Load (d, a) -> ra 1 d a
  | Store (a, s) -> tag 2; put_addr buf a; put_iop buf s
  | Leaq (d, a) -> ra 3 d a
  | Addq (d, s) -> ri 4 d s
  | Subq (d, s) -> ri 5 d s
  | Imulq (d, s) -> ri 6 d s
  | Idivq (d, s) -> ri 7 d s
  | Iremq (d, s) -> ri 8 d s
  | Negq d -> tag 9; put_varint buf d
  | Andq (d, s) -> ri 10 d s
  | Orq (d, s) -> ri 11 d s
  | Xorq (d, s) -> ri 12 d s
  | Shlq (d, k) -> rr 13 d k
  | Sarq (d, k) -> rr 14 d k
  | Incq d -> tag 15; put_varint buf d
  | Decq d -> tag 16; put_varint buf d
  | Cmpq (a, b) -> tag 17; put_iop buf a; put_iop buf b
  | Testq (a, b) -> tag 18; put_iop buf a; put_iop buf b
  | Jmp t -> tag 19; put_varint buf t
  | Jcc (c, t) -> tag 20; put_varint buf (cc_code c); put_varint buf t
  | Call f -> tag 21; put_string buf f
  | Call_ext (f, n) -> tag 22; put_string buf f; put_varint buf n
  | Ret -> tag 23
  | Movsd_rr (d, s) -> rr 24 d s
  | Movsd_load (d, a) -> ra 25 d a
  | Movsd_store (a, s) -> tag 26; put_addr buf a; put_varint buf s
  | Movsd_const (d, k) -> rr 46 d k
  | Movapd (d, s) -> rr 27 d s
  | Movapd_load (d, a) -> ra 28 d a
  | Movapd_store (a, s) -> tag 29; put_addr buf a; put_varint buf s
  | Xorpd d -> tag 30; put_varint buf d
  | Addsd (d, s) -> rr 31 d s
  | Subsd (d, s) -> rr 32 d s
  | Mulsd (d, s) -> rr 33 d s
  | Divsd (d, s) -> rr 34 d s
  | Sqrtsd (d, s) -> rr 35 d s
  | Ucomisd (d, s) -> rr 36 d s
  | Addpd (d, s) -> rr 37 d s
  | Subpd (d, s) -> rr 38 d s
  | Mulpd (d, s) -> rr 39 d s
  | Divpd (d, s) -> rr 40 d s
  | Cvtsi2sd (d, s) -> rr 41 d s
  | Cvttsd2si (d, s) -> rr 42 d s
  | Nop -> tag 43
  | Alloc_i (d, n) -> ri 44 d n
  | Alloc_f (d, n) -> ri 45 d n

let get_insn r =
  let t = byte r in
  let v () = get_varint r in
  (* OCaml evaluates constructor arguments right-to-left; every
     multi-operand case must bind its reads explicitly in order. *)
  let ri mk = let d = v () in let s = get_iop r in mk d s in
  let ra mk = let d = v () in let a = get_addr r in mk d a in
  match t with
  | 0 -> ri (fun d s -> Movq (d, s))
  | 1 -> ra (fun d a -> Load (d, a))
  | 2 -> let a = get_addr r in Store (a, get_iop r)
  | 3 -> ra (fun d a -> Leaq (d, a))
  | 4 -> ri (fun d s -> Addq (d, s))
  | 5 -> ri (fun d s -> Subq (d, s))
  | 6 -> ri (fun d s -> Imulq (d, s))
  | 7 -> ri (fun d s -> Idivq (d, s))
  | 8 -> ri (fun d s -> Iremq (d, s))
  | 9 -> Negq (v ())
  | 10 -> ri (fun d s -> Andq (d, s))
  | 11 -> ri (fun d s -> Orq (d, s))
  | 12 -> ri (fun d s -> Xorq (d, s))
  | 13 -> let d = v () in Shlq (d, v ())
  | 14 -> let d = v () in Sarq (d, v ())
  | 15 -> Incq (v ())
  | 16 -> Decq (v ())
  | 17 -> let a = get_iop r in Cmpq (a, get_iop r)
  | 18 -> let a = get_iop r in Testq (a, get_iop r)
  | 19 -> Jmp (v ())
  | 20 -> let c = cc_of_code (v ()) in Jcc (c, v ())
  | 21 -> Call (get_string r)
  | 22 -> let f = get_string r in Call_ext (f, v ())
  | 23 -> Ret
  | 24 -> let d = v () in Movsd_rr (d, v ())
  | 25 -> ra (fun d a -> Movsd_load (d, a))
  | 26 -> let a = get_addr r in Movsd_store (a, v ())
  | 27 -> let d = v () in Movapd (d, v ())
  | 28 -> ra (fun d a -> Movapd_load (d, a))
  | 29 -> let a = get_addr r in Movapd_store (a, v ())
  | 30 -> Xorpd (v ())
  | 31 -> let d = v () in Addsd (d, v ())
  | 32 -> let d = v () in Subsd (d, v ())
  | 33 -> let d = v () in Mulsd (d, v ())
  | 34 -> let d = v () in Divsd (d, v ())
  | 35 -> let d = v () in Sqrtsd (d, v ())
  | 36 -> let d = v () in Ucomisd (d, v ())
  | 37 -> let d = v () in Addpd (d, v ())
  | 38 -> let d = v () in Subpd (d, v ())
  | 39 -> let d = v () in Mulpd (d, v ())
  | 40 -> let d = v () in Divpd (d, v ())
  | 41 -> let d = v () in Cvtsi2sd (d, v ())
  | 42 -> let d = v () in Cvttsd2si (d, v ())
  | 43 -> Nop
  | 44 -> ri (fun d s -> Alloc_i (d, s))
  | 45 -> ri (fun d s -> Alloc_f (d, s))
  | 46 -> let d = v () in Movsd_const (d, v ())
  | t -> raise (Corrupt (Printf.sprintf "bad instruction tag %d" t))

(* --- sections --- *)

let kind_code = function
  | Program.Kint -> 0
  | Program.Kdouble -> 1
  | Program.Kvoid -> 2

let kind_of_code = function
  | 0 -> Program.Kint
  | 1 -> Program.Kdouble
  | 2 -> Program.Kvoid
  | k -> raise (Corrupt (Printf.sprintf "bad value kind %d" k))

let encode_section buf name payload =
  put_string buf name;
  put_string buf payload

let encode (p : Program.t) =
  let symtab = Buffer.create 256 in
  put_varint symtab (List.length p.funs);
  List.iter
    (fun (f : Program.fundef) ->
      put_string symtab f.name;
      put_varint symtab (List.length f.params);
      List.iter (fun k -> put_varint symtab (kind_code k)) f.params;
      put_varint symtab (kind_code f.ret);
      put_varint symtab f.n_iregs;
      put_varint symtab f.n_xregs;
      put_varint symtab (Array.length f.insns))
    p.funs;
  let text = Buffer.create 1024 in
  List.iter
    (fun (f : Program.fundef) -> Array.iter (put_insn text) f.insns)
    p.funs;
  let dbg = Buffer.create 1024 in
  List.iter
    (fun (f : Program.fundef) ->
      Array.iter
        (fun (d : Program.debug) ->
          put_varint dbg d.line;
          put_varint dbg d.col)
        f.debug)
    p.funs;
  let rodata = Buffer.create 64 in
  put_varint rodata (Array.length p.fpool);
  Array.iter (put_float rodata) p.fpool;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf 4;
  encode_section buf ".symtab" (Buffer.contents symtab);
  encode_section buf ".text" (Buffer.contents text);
  encode_section buf ".rodata" (Buffer.contents rodata);
  encode_section buf ".debug_line" (Buffer.contents dbg);
  Buffer.contents buf

(* Stateful reads must happen strictly in order; List.init/Array.init
   do not guarantee evaluation order.  Counts come from untrusted
   input: negative or absurd values are corruption, not allocation
   requests. *)
let check_count ?(limit = 100_000_000) n =
  if n < 0 || n > limit then
    raise (Corrupt (Printf.sprintf "implausible element count %d" n))

let read_list ?limit n f =
  check_count ?limit n;
  let rec go acc k = if k = 0 then List.rev acc else go (f () :: acc) (k - 1) in
  go [] n

let read_array ?limit n f =
  check_count ?limit n;
  if n = 0 then [||]
  else begin
    let first = f () in
    let a = Array.make n first in
    for i = 1 to n - 1 do
      a.(i) <- f ()
    done;
    a
  end

type sym = {
  s_name : string;
  s_params : Program.value_kind list;
  s_ret : Program.value_kind;
  s_niregs : int;
  s_nxregs : int;
  s_count : int;
}

let decode src =
  if String.length src < String.length magic
     || String.sub src 0 (String.length magic) <> magic then
    raise (Corrupt "bad magic");
  let r = { src; off = String.length magic } in
  let nsections = get_varint r in
  let sections = ref [] in
  for _ = 1 to nsections do
    let name = get_string r in
    let payload = get_string r in
    sections := (name, payload) :: !sections
  done;
  let section name =
    match List.assoc_opt name !sections with
    | Some s -> s
    | None -> raise (Corrupt ("missing section " ^ name))
  in
  let symr = { src = section ".symtab"; off = 0 } in
  let nfuns = get_varint symr in
  let syms =
    read_list nfuns (fun () ->
        let s_name = get_string symr in
        let nparams = get_varint symr in
        let s_params =
          read_list nparams (fun () -> kind_of_code (get_varint symr))
        in
        let s_ret = kind_of_code (get_varint symr) in
        let s_niregs = get_varint symr in
        let s_nxregs = get_varint symr in
        let s_count = get_varint symr in
        { s_name; s_params; s_ret; s_niregs; s_nxregs; s_count })
  in
  let textr = { src = section ".text"; off = 0 } in
  let dbgr = { src = section ".debug_line"; off = 0 } in
  let rodatar = { src = section ".rodata"; off = 0 } in
  let npool = get_varint rodatar in
  let fpool =
    read_array ~limit:(String.length rodatar.src) npool (fun () ->
        get_float rodatar)
  in
  (* List.map does not guarantee evaluation order either. *)
  let rec map_in_order f = function
    | [] -> []
    | x :: rest ->
        let y = f x in
        y :: map_in_order f rest
  in
  let funs =
    map_in_order
      (fun s ->
        let insns =
          read_array ~limit:(String.length textr.src) s.s_count (fun () ->
              get_insn textr)
        in
        let debug =
          read_array s.s_count (fun () ->
              let line = get_varint dbgr in
              let col = get_varint dbgr in
              { Program.line; col })
        in
        {
          Program.name = s.s_name;
          params = s.s_params;
          ret = s.s_ret;
          insns;
          debug;
          n_iregs = s.s_niregs;
          n_xregs = s.s_nxregs;
        })
      syms
  in
  { Program.funs; fpool }

let write_file path p =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode p))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

let section_sizes src =
  if String.length src < String.length magic then raise (Corrupt "bad magic");
  let r = { src; off = String.length magic } in
  let n = get_varint r in
  let acc = ref [ ("header", String.length magic) ] in
  for _ = 1 to n do
    let name = get_string r in
    let payload = get_string r in
    acc := (name, String.length payload) :: !acc
  done;
  List.rev !acc
