type bin_insn = {
  addr : int;
  insn : Isa.insn;
  mnemonic : string;
  text : string;
  line : int;
  col : int;
}

type bin_func = { fname : string; fsize : int; finsns : bin_insn list }
type t = { bfuncs : bin_func list; bpool : float array }

let of_program (p : Program.t) =
  let bfuncs =
    List.map
      (fun (f : Program.fundef) ->
        let finsns =
          Array.to_list
            (Array.mapi
               (fun i insn ->
                 let d = f.debug.(i) in
                 {
                   addr = i;
                   insn;
                   mnemonic = Isa.mnemonic insn;
                   text = Isa.insn_to_string insn;
                   line = d.Program.line;
                   col = d.Program.col;
                 })
               f.insns)
        in
        { fname = f.name; fsize = Array.length f.insns; finsns })
      p.funs
  in
  { bfuncs; bpool = p.fpool }

let of_object bytes = of_program (Objfile.decode bytes)

let find_func t name = List.find_opt (fun f -> f.fname = name) t.bfuncs

let to_dot t =
  let buf = Buffer.create 1024 in
  let next = ref 0 in
  let node label =
    let id = !next in
    incr next;
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" id (String.escaped label));
    id
  in
  let edge a b = Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b) in
  Buffer.add_string buf "digraph binast {\n  node [shape=box];\n";
  let root = node "SgAsmBlock" in
  List.iter
    (fun f ->
      let fid = node (Printf.sprintf "SgAsmFunction %s" f.fname) in
      edge root fid;
      let blk = node "SgAsmBlock" in
      edge fid blk;
      List.iter
        (fun i ->
          let iid =
            node
              (Printf.sprintf "SgAsmX86Instruction 0x%04x: %s  <%d:%d>" i.addr
                 i.text i.line i.col)
          in
          edge blk iid)
        f.finsns)
    t.bfuncs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  List.iter
    (fun f ->
      Format.fprintf ppf "%s:  # %d instructions@." f.fname f.fsize;
      List.iter
        (fun i ->
          Format.fprintf ppf "  %04x: %-40s # %d:%d@." i.addr i.text i.line
            i.col)
        f.finsns)
    t.bfuncs
