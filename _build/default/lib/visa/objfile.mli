(** Object-file encoding — the stand-in for ELF.

    A serialized program has a magic header and three sections
    mirroring what Mira reads from a real binary:

    - [.symtab]: function names, signatures and code extents;
    - [.text]: the instruction encodings;
    - [.debug_line]: one (line, column) record per instruction, the
      DWARF line-table equivalent used to bridge the binary AST back
      to source positions (paper §III-A2).

    The encoding is deterministic, so encode/decode round-trips are
    testable byte-for-byte. *)

exception Corrupt of string

val encode : Program.t -> string
val decode : string -> Program.t
(** @raise Corrupt on malformed input. *)

val write_file : string -> Program.t -> unit
val read_file : string -> Program.t

val section_sizes : string -> (string * int) list
(** Sizes in bytes of the header and each section of an encoded
    object, for reporting. *)
