(** The binary AST (paper Figure 3).

    Disassembling an object file yields a tree shaped like ROSE's
    binary AST: an [SgAsmBlock] of [SgAsmFunction]s, each containing
    [SgAsmX86Instruction]s.  Every instruction node carries the
    source line/column recovered from [.debug_line] — the information
    the source↔binary bridge matches on. *)

type bin_insn = {
  addr : int;  (** index within the function's code *)
  insn : Isa.insn;
  mnemonic : string;
  text : string;  (** disassembly rendering *)
  line : int;
  col : int;
}

type bin_func = {
  fname : string;
  fsize : int;
  finsns : bin_insn list;
}

type t = { bfuncs : bin_func list; bpool : float array }

val of_program : Program.t -> t
val of_object : string -> t
(** Disassemble an encoded object file. *)

val find_func : t -> string -> bin_func option

val to_dot : t -> string
(** Graphviz rendering with ROSE [SgAsm*] node labels. *)

val pp : Format.formatter -> t -> unit
