(* Compiled programs: functions with their instructions and per-
   instruction debug records (source line and column — the virtual
   counterpart of DWARF .debug_line). *)

type value_kind = Kint | Kdouble | Kvoid

type debug = { line : int; col : int }

type fundef = {
  name : string;  (* mangled: `A::foo` for methods *)
  params : value_kind list;  (* Kint also covers array addresses *)
  ret : value_kind;
  insns : Isa.insn array;
  debug : debug array;  (* same length as insns *)
  n_iregs : int;  (* frame-local register-file sizes *)
  n_xregs : int;
}

type t = {
  funs : fundef list;
  fpool : float array;  (* .rodata: double constants for Movsd_const *)
}

let find t name = List.find_opt (fun f -> f.name = name) t.funs

let find_exn t name =
  match find t name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Program.find_exn: no function %s" name)

let total_insns t =
  List.fold_left (fun n f -> n + Array.length f.insns) 0 t.funs

let pp_fundef ppf f =
  Format.fprintf ppf "%s:  # %d instructions@." f.name (Array.length f.insns);
  Array.iteri
    (fun i insn ->
      let d = f.debug.(i) in
      Format.fprintf ppf "  %4d: %-40s # %d:%d@." i (Isa.insn_to_string insn)
        d.line d.col)
    f.insns

let pp ppf t = List.iter (pp_fundef ppf) t.funs
