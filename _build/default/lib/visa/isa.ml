(* The virtual instruction set Mira's compiler targets.

   It is deliberately x86-64-shaped: two register files (general
   purpose and XMM), memory operands with base/index/scale/disp
   addressing, condition flags, and SSE2-style scalar/packed
   floating-point instructions.  Registers 0..15 of each file are the
   ABI registers (argument and return-value passing, shared across
   frames, caller-saved by construction); registers from 16 up are
   frame-local virtual registers.

   Memory is split into an integer space and a floating-point space
   (Fortran-style); addresses are element indices within a space.
   [Alloc_i]/[Alloc_f] stand in for the allocator the runtime would
   provide. *)

type ireg = int
type xreg = int

let abi_regs = 16
(* First frame-local register index. *)

type addr = {
  base : ireg;
  index : ireg option;
  scale : int;  (* element scale for the index register *)
  disp : int;
}

type iop = Reg of ireg | Imm of int

type cc = E | NE | L | LE | G | GE

type insn =
  (* integer data transfer *)
  | Movq of ireg * iop
  | Load of ireg * addr  (* from integer memory *)
  | Store of addr * iop  (* to integer memory *)
  | Leaq of ireg * addr
  (* integer arithmetic / logic *)
  | Addq of ireg * iop
  | Subq of ireg * iop
  | Imulq of ireg * iop
  | Idivq of ireg * iop  (* dst <- dst / src, truncated *)
  | Iremq of ireg * iop  (* dst <- dst mod src, sign of dividend *)
  | Negq of ireg
  | Andq of ireg * iop
  | Orq of ireg * iop
  | Xorq of ireg * iop
  | Shlq of ireg * int
  | Sarq of ireg * int
  | Incq of ireg
  | Decq of ireg
  | Cmpq of iop * iop  (* flags <- sign (a - b) *)
  | Testq of iop * iop
  (* control transfer; targets are instruction indices in the function *)
  | Jmp of int
  | Jcc of cc * int
  | Call of string
  | Call_ext of string * int  (* external function, arity *)
  | Ret
  (* SSE2 data movement *)
  | Movsd_rr of xreg * xreg
  | Movsd_load of xreg * addr  (* from float memory *)
  | Movsd_store of addr * xreg
  | Movsd_const of xreg * int  (* load from the .rodata constant pool *)
  | Movapd of xreg * xreg  (* packed register move: pairs (r, r+1) *)
  | Movapd_load of xreg * addr  (* packed load: r, r+1 <- [a], [a+1] *)
  | Movapd_store of addr * xreg
  | Xorpd of xreg  (* zero an xmm register *)
  (* SSE2 arithmetic *)
  | Addsd of xreg * xreg
  | Subsd of xreg * xreg
  | Mulsd of xreg * xreg
  | Divsd of xreg * xreg
  | Sqrtsd of xreg * xreg  (* dst <- sqrt src *)
  | Ucomisd of xreg * xreg  (* flags <- compare *)
  | Addpd of xreg * xreg
  | Subpd of xreg * xreg
  | Mulpd of xreg * xreg
  | Divpd of xreg * xreg
  (* conversions *)
  | Cvtsi2sd of xreg * ireg
  | Cvttsd2si of ireg * xreg
  (* misc *)
  | Nop
  | Alloc_i of ireg * iop  (* dst <- address of fresh int block *)
  | Alloc_f of ireg * iop

let mnemonic = function
  | Movq _ | Load _ | Store _ -> "movq"
  | Leaq _ -> "leaq"
  | Addq _ -> "addq"
  | Subq _ -> "subq"
  | Imulq _ -> "imulq"
  | Idivq _ -> "idivq"
  | Iremq _ -> "iremq"
  | Negq _ -> "negq"
  | Andq _ -> "andq"
  | Orq _ -> "orq"
  | Xorq _ -> "xorq"
  | Shlq _ -> "shlq"
  | Sarq _ -> "sarq"
  | Incq _ -> "incq"
  | Decq _ -> "decq"
  | Cmpq _ -> "cmpq"
  | Testq _ -> "testq"
  | Jmp _ -> "jmp"
  | Jcc (E, _) -> "je"
  | Jcc (NE, _) -> "jne"
  | Jcc (L, _) -> "jl"
  | Jcc (LE, _) -> "jle"
  | Jcc (G, _) -> "jg"
  | Jcc (GE, _) -> "jge"
  | Call _ -> "call"
  | Call_ext _ -> "call"
  | Ret -> "ret"
  | Movsd_rr _ | Movsd_load _ | Movsd_store _ | Movsd_const _ -> "movsd"
  | Movapd _ | Movapd_load _ | Movapd_store _ -> "movapd"
  | Xorpd _ -> "xorpd"
  | Addsd _ -> "addsd"
  | Subsd _ -> "subsd"
  | Mulsd _ -> "mulsd"
  | Divsd _ -> "divsd"
  | Sqrtsd _ -> "sqrtsd"
  | Ucomisd _ -> "ucomisd"
  | Addpd _ -> "addpd"
  | Subpd _ -> "subpd"
  | Mulpd _ -> "mulpd"
  | Divpd _ -> "divpd"
  | Cvtsi2sd _ -> "cvtsi2sd"
  | Cvttsd2si _ -> "cvttsd2si"
  | Nop -> "nop"
  | Alloc_i _ -> "alloci"
  | Alloc_f _ -> "allocf"

let all_mnemonics =
  [
    "movq"; "leaq"; "addq"; "subq"; "imulq"; "idivq"; "iremq"; "negq";
    "andq"; "orq"; "xorq"; "shlq"; "sarq"; "incq"; "decq"; "cmpq"; "testq";
    "jmp"; "je"; "jne"; "jl"; "jle"; "jg"; "jge"; "call"; "ret";
    "movsd"; "movapd"; "xorpd";
    "addsd"; "subsd"; "mulsd"; "divsd"; "sqrtsd"; "ucomisd";
    "addpd"; "subpd"; "mulpd"; "divpd";
    "cvtsi2sd"; "cvttsd2si"; "nop"; "alloci"; "allocf";
  ]

let is_packed_mnemonic = function
  | "movapd" | "addpd" | "subpd" | "mulpd" | "divpd" -> true
  | _ -> false

let is_packed = function
  | Movapd _ | Movapd_load _ | Movapd_store _ | Addpd _ | Subpd _ | Mulpd _
  | Divpd _ ->
      true
  | _ -> false

let pp_ireg ppf r =
  if r < abi_regs then Format.fprintf ppf "%%a%d" r
  else Format.fprintf ppf "%%r%d" r

let pp_xreg ppf r =
  if r < abi_regs then Format.fprintf ppf "%%xa%d" r
  else Format.fprintf ppf "%%x%d" r

let pp_addr ppf a =
  match a.index with
  | None -> Format.fprintf ppf "%d(%a)" a.disp pp_ireg a.base
  | Some i -> Format.fprintf ppf "%d(%a,%a,%d)" a.disp pp_ireg a.base pp_ireg i a.scale

let pp_iop ppf = function
  | Reg r -> pp_ireg ppf r
  | Imm n -> Format.fprintf ppf "$%d" n

let pp_insn ppf insn =
  let m = mnemonic insn in
  match insn with
  | Movq (d, s) -> Format.fprintf ppf "%s %a, %a" m pp_iop s pp_ireg d
  | Load (d, a) -> Format.fprintf ppf "%s %a, %a" m pp_addr a pp_ireg d
  | Store (a, s) -> Format.fprintf ppf "%s %a, %a" m pp_iop s pp_addr a
  | Leaq (d, a) -> Format.fprintf ppf "%s %a, %a" m pp_addr a pp_ireg d
  | Addq (d, s) | Subq (d, s) | Imulq (d, s) | Idivq (d, s) | Iremq (d, s)
  | Andq (d, s) | Orq (d, s) | Xorq (d, s) ->
      Format.fprintf ppf "%s %a, %a" m pp_iop s pp_ireg d
  | Negq d | Incq d | Decq d -> Format.fprintf ppf "%s %a" m pp_ireg d
  | Shlq (d, k) | Sarq (d, k) -> Format.fprintf ppf "%s $%d, %a" m k pp_ireg d
  | Cmpq (a, b) | Testq (a, b) ->
      Format.fprintf ppf "%s %a, %a" m pp_iop b pp_iop a
  | Jmp t -> Format.fprintf ppf "%s .L%d" m t
  | Jcc (_, t) -> Format.fprintf ppf "%s .L%d" m t
  | Call f -> Format.fprintf ppf "%s %s" m f
  | Call_ext (f, _) -> Format.fprintf ppf "%s %s@plt" m f
  | Ret -> Format.fprintf ppf "%s" m
  | Movsd_rr (d, s) | Movapd (d, s) ->
      Format.fprintf ppf "%s %a, %a" m pp_xreg s pp_xreg d
  | Movsd_load (d, a) | Movapd_load (d, a) ->
      Format.fprintf ppf "%s %a, %a" m pp_addr a pp_xreg d
  | Movsd_store (a, s) | Movapd_store (a, s) ->
      Format.fprintf ppf "%s %a, %a" m pp_xreg s pp_addr a
  | Movsd_const (d, k) -> Format.fprintf ppf "%s .LC%d(%%rip), %a" m k pp_xreg d
  | Xorpd d -> Format.fprintf ppf "%s %a, %a" m pp_xreg d pp_xreg d
  | Addsd (d, s) | Subsd (d, s) | Mulsd (d, s) | Divsd (d, s)
  | Sqrtsd (d, s) | Ucomisd (d, s) | Addpd (d, s) | Subpd (d, s)
  | Mulpd (d, s) | Divpd (d, s) ->
      Format.fprintf ppf "%s %a, %a" m pp_xreg s pp_xreg d
  | Cvtsi2sd (d, s) -> Format.fprintf ppf "%s %a, %a" m pp_ireg s pp_xreg d
  | Cvttsd2si (d, s) -> Format.fprintf ppf "%s %a, %a" m pp_xreg s pp_ireg d
  | Nop -> Format.fprintf ppf "%s" m
  | Alloc_i (d, n) | Alloc_f (d, n) ->
      Format.fprintf ppf "%s %a, %a" m pp_iop n pp_ireg d

let insn_to_string i = Format.asprintf "%a" pp_insn i
