lib/visa/program.ml: Array Format Isa List Printf
