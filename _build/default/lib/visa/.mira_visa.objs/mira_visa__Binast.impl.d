lib/visa/binast.ml: Array Buffer Format Isa List Objfile Printf Program String
