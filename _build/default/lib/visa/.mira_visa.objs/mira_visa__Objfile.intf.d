lib/visa/objfile.mli: Program
