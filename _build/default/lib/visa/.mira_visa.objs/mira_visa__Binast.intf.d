lib/visa/binast.mli: Format Isa Program
