lib/visa/objfile.ml: Array Buffer Char Fun Int64 Isa List Printf Program String
