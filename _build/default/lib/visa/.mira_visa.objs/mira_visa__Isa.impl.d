lib/visa/isa.ml: Format
