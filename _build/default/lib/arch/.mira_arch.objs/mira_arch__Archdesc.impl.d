lib/arch/archdesc.ml: Buffer Fun Hashtbl List Mira_visa Option Printf String
