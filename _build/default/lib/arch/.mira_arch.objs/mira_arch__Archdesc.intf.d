lib/arch/archdesc.mli:
