type t = {
  name : string;
  cores : int;
  cache_line_bytes : int;
  vector_bits : int;
  clock_ghz : float;
  peak_gflops : float;
  mem_gbps : float;
  unavailable_counters : string list;
  categories : (string * string list) list;
  groups : (string * string list) list;
  costs : (string * float) list;  (* fine category -> issue cost in cycles *)
}

exception Parse_error of string * int

(* The default 64-category table.  Our virtual ISA occupies a subset;
   the remaining categories are the x86 families a real description
   file would carry (x87, MMX, AVX, string ops, ...), listed so the
   file genuinely describes 64 categories as in the paper. *)
let default_categories =
  [
    ("int_arith_add", [ "addq"; "incq" ]);
    ("int_arith_sub", [ "subq"; "decq"; "negq" ]);
    ("int_arith_mul", [ "imulq" ]);
    ("int_arith_div", [ "idivq"; "iremq" ]);
    ("int_logic", [ "andq"; "orq"; "xorq" ]);
    ("int_shift", [ "shlq"; "sarq" ]);
    ("int_compare", [ "cmpq"; "testq" ]);
    ("int_mov", [ "movq" ]);
    ("int_push_pop", []);
    ("jump_uncond", [ "jmp" ]);
    ("jump_cond", [ "je"; "jne"; "jl"; "jle"; "jg"; "jge" ]);
    ("call_ret", [ "call"; "ret" ]);
    ("lea", [ "leaq" ]);
    ("sse2_mov_scalar", [ "movsd" ]);
    ("sse2_mov_packed", [ "movapd" ]);
    ("sse2_logical", [ "xorpd" ]);
    ("sse2_arith_scalar", [ "addsd"; "subsd"; "mulsd"; "divsd" ]);
    ("sse2_arith_packed", [ "addpd"; "subpd"; "mulpd"; "divpd" ]);
    ("sse2_sqrt", [ "sqrtsd" ]);
    ("sse2_compare", [ "ucomisd" ]);
    ("sse2_convert", [ "cvtsi2sd"; "cvttsd2si" ]);
    ("nop", [ "nop" ]);
    ("system_alloc", [ "alloci"; "allocf" ]);
    (* x86 families without counterparts in the virtual ISA *)
    ("int_arith_adc", []); ("int_arith_sbb", []); ("int_mul_high", []);
    ("int_bit_test", []); ("int_bit_scan", []); ("int_rotate", []);
    ("int_cmov", []); ("int_setcc", []); ("int_xchg", []);
    ("int_string", []); ("int_io", []); ("flag_ops", []);
    ("segment_ops", []); ("x87_load", []); ("x87_store", []);
    ("x87_arith", []); ("x87_compare", []); ("x87_transcendental", []);
    ("x87_control", []); ("mmx_mov", []); ("mmx_arith", []);
    ("mmx_pack", []); ("mmx_logical", []); ("sse_mov", []);
    ("sse_arith", []); ("sse_compare", []); ("sse_convert", []);
    ("sse_shuffle", []); ("sse2_shuffle", []); ("sse2_int_simd", []);
    ("sse3", []); ("ssse3", []); ("sse41", []); ("sse42", []);
    ("avx_mov", []); ("avx_arith", []); ("avx_fma", []); ("avx2", []);
    ("aes_ni", []); ("crypto_sha", []); ("system_call", []);
    ("system_privileged", []); ("prefetch", []); ("fence", []);
    ("atomic", []);
  ]

let () = assert (List.length default_categories >= 64)

(* Reciprocal-throughput-style issue costs in cycles per fine
   category; categories not listed cost [default_cost]. *)
let default_cost = 1.0

let default_costs =
  [
    ("int_arith_mul", 3.0); ("int_arith_div", 22.0);
    ("sse2_arith_scalar", 2.0); ("sse2_arith_packed", 2.0);
    ("sse2_sqrt", 16.0); ("sse2_compare", 2.0); ("sse2_convert", 4.0);
    ("sse2_mov_scalar", 3.0); ("sse2_mov_packed", 3.0);
    ("int_mov", 1.0); ("jump_cond", 1.5); ("call_ret", 2.0);
    ("system_alloc", 50.0);
  ]

let default_groups =
  [
    ( "Integer arithmetic instruction",
      [ "int_arith_add"; "int_arith_sub"; "int_arith_mul"; "int_arith_div";
        "int_logic"; "int_shift"; "int_compare" ] );
    ( "Integer control transfer instruction",
      [ "jump_uncond"; "jump_cond"; "call_ret" ] );
    ("Integer data transfer instruction", [ "int_mov"; "int_push_pop" ]);
    ( "SSE2 data movement instruction",
      [ "sse2_mov_scalar"; "sse2_mov_packed"; "sse2_logical" ] );
    ( "SSE2 packed arithmetic instruction",
      [ "sse2_arith_scalar"; "sse2_arith_packed"; "sse2_sqrt"; "sse2_compare" ] );
    ("64-bit mode instruction", [ "lea"; "sse2_convert" ]);
    ("Misc instruction", [ "nop"; "system_alloc" ]);
  ]

let make ~name ~cores ~cache_line_bytes ~vector_bits ~clock_ghz ~peak_gflops
    ~mem_gbps ~unavailable_counters =
  {
    name;
    cores;
    cache_line_bytes;
    vector_bits;
    clock_ghz;
    peak_gflops;
    mem_gbps;
    unavailable_counters;
    categories = default_categories;
    groups = default_groups;
    costs = default_costs;
  }

(* The two evaluation machines of §IV-A. *)
let arya =
  make ~name:"arya" ~cores:36 ~cache_line_bytes:64 ~vector_bits:256
    ~clock_ghz:2.3 ~peak_gflops:1324.8 ~mem_gbps:68.0
    ~unavailable_counters:[ "FP_INS"; "FP_OPS" ]

let frankenstein =
  make ~name:"frankenstein" ~cores:8 ~cache_line_bytes:64 ~vector_bits:128
    ~clock_ghz:2.4 ~peak_gflops:76.8 ~mem_gbps:25.6 ~unavailable_counters:[]

(* ---------- text format ---------- *)

let split_words s =
  (* whitespace-separated tokens; double quotes group words *)
  let n = String.length s in
  let toks = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' -> flush ()
    | '"' ->
        incr i;
        while !i < n && s.[!i] <> '"' do
          Buffer.add_char buf s.[!i];
          incr i
        done;
        flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !toks

let parse text =
  let name = ref "unnamed" in
  let cores = ref 1 and cache_line = ref 64 and vector_bits = ref 128 in
  let clock = ref 1.0 and peak = ref 0.0 and gbps = ref 0.0 in
  let no_counters = ref [] in
  let cats = ref [] and groups = ref [] in
  let costs = ref [] in
  let explicit_cats = ref false and explicit_groups = ref false in
  let explicit_costs = ref false in
  List.iteri
    (fun lineno line ->
      let lineno = lineno + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match split_words line with
      | [] -> ()
      | directive :: args -> (
          let int1 () =
            match args with
            | [ a ] -> (
                match int_of_string_opt a with
                | Some v -> v
                | None ->
                    raise (Parse_error (directive ^ " expects an integer", lineno)))
            | _ -> raise (Parse_error (directive ^ " expects one argument", lineno))
          in
          let float1 () =
            match args with
            | [ a ] -> (
                match float_of_string_opt a with
                | Some v -> v
                | None ->
                    raise (Parse_error (directive ^ " expects a number", lineno)))
            | _ -> raise (Parse_error (directive ^ " expects one argument", lineno))
          in
          match directive with
          | "arch" -> (
              match args with
              | [ a ] -> name := a
              | _ -> raise (Parse_error ("arch expects one name", lineno)))
          | "cores" -> cores := int1 ()
          | "cache_line" -> cache_line := int1 ()
          | "vector_bits" -> vector_bits := int1 ()
          | "clock_ghz" -> clock := float1 ()
          | "peak_gflops" -> peak := float1 ()
          | "mem_gbps" -> gbps := float1 ()
          | "no_counter" -> no_counters := !no_counters @ args
          | "category" -> (
              explicit_cats := true;
              match args with
              | cat :: mnemonics -> cats := !cats @ [ (cat, mnemonics) ]
              | [] -> raise (Parse_error ("category expects a name", lineno)))
          | "group" -> (
              explicit_groups := true;
              match args with
              | g :: members -> groups := !groups @ [ (g, members) ]
              | [] -> raise (Parse_error ("group expects a name", lineno)))
          | "cost" -> (
              explicit_costs := true;
              match args with
              | [ cat; cycles ] -> (
                  match float_of_string_opt cycles with
                  | Some v -> costs := !costs @ [ (cat, v) ]
                  | None ->
                      raise (Parse_error ("cost expects a number", lineno)))
              | _ ->
                  raise
                    (Parse_error ("cost expects a category and cycles", lineno)))
          | d -> raise (Parse_error ("unknown directive " ^ d, lineno))))
    (String.split_on_char '\n' text);
  {
    name = !name;
    cores = !cores;
    cache_line_bytes = !cache_line;
    vector_bits = !vector_bits;
    clock_ghz = !clock;
    peak_gflops = !peak;
    mem_gbps = !gbps;
    unavailable_counters = !no_counters;
    categories = (if !explicit_cats then !cats else default_categories);
    groups = (if !explicit_groups then !groups else default_groups);
    costs = (if !explicit_costs then !costs else default_costs);
  }

let to_text t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "arch %s" t.name;
  line "cores %d" t.cores;
  line "cache_line %d" t.cache_line_bytes;
  line "vector_bits %d" t.vector_bits;
  line "clock_ghz %g" t.clock_ghz;
  line "peak_gflops %g" t.peak_gflops;
  line "mem_gbps %g" t.mem_gbps;
  List.iter (fun c -> line "no_counter %s" c) t.unavailable_counters;
  List.iter
    (fun (c, ms) -> line "category %s %s" c (String.concat " " ms))
    t.categories;
  List.iter
    (fun (g, cs) -> line "group \"%s\" %s" g (String.concat " " cs))
    t.groups;
  List.iter (fun (c, v) -> line "cost %s %g" c v) t.costs;
  Buffer.contents b

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---------- queries ---------- *)

let category_of_mnemonic t m =
  List.find_map
    (fun (c, ms) -> if List.mem m ms then Some c else None)
    t.categories

let group_of_category t c =
  List.find_map
    (fun (g, cs) -> if List.mem c cs then Some g else None)
    t.groups

let group_of_mnemonic t m =
  Option.bind (category_of_mnemonic t m) (group_of_category t)

let n_categories t = List.length t.categories

let counter_available t c = not (List.mem c t.unavailable_counters)

let aggregate t counts =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (m, c) ->
      match group_of_mnemonic t m with
      | Some g ->
          Hashtbl.replace totals g
            (c + Option.value ~default:0 (Hashtbl.find_opt totals g))
      | None -> ())
    counts;
  List.map
    (fun (g, _) -> (g, Option.value ~default:0 (Hashtbl.find_opt totals g)))
    t.groups

let vector_lanes t = max 1 (t.vector_bits / 64)

let cost_of_category t c =
  Option.value ~default:default_cost (List.assoc_opt c t.costs)

let cost_of_mnemonic t m =
  match category_of_mnemonic t m with
  | Some c -> cost_of_category t c
  | None -> default_cost

let validate t =
  let errs = ref [] in
  List.iter
    (fun m ->
      if category_of_mnemonic t m = None then
        errs := Printf.sprintf "mnemonic %s has no category" m :: !errs)
    Mira_visa.Isa.all_mnemonics;
  List.iter
    (fun (c, _) ->
      let owners =
        List.filter (fun (_, cs) -> List.mem c cs) t.groups |> List.length
      in
      if owners > 1 then
        errs := Printf.sprintf "category %s is in %d groups" c owners :: !errs)
    t.categories;
  List.iter
    (fun (g, cs) ->
      List.iter
        (fun c ->
          if not (List.mem_assoc c t.categories) then
            errs :=
              Printf.sprintf "group %s references unknown category %s" g c
              :: !errs)
        cs)
    t.groups;
  List.iter
    (fun (c, v) ->
      if not (List.mem_assoc c t.categories) then
        errs := Printf.sprintf "cost for unknown category %s" c :: !errs;
      if v < 0.0 then
        errs := Printf.sprintf "negative cost for category %s" c :: !errs)
    t.costs;
  match !errs with [] -> Ok () | es -> Error (List.rev es)
