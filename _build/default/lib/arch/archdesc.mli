(** Architecture description files (paper §III-C6).

    A description names the machine, its structural parameters (cores,
    cache line, vector width, clock), the hardware counters it lacks
    (modern Haswell parts dropped FP_INS — §IV-D1), and an instruction
    categorization: every mnemonic maps to one of 64 fine categories,
    and fine categories aggregate into display groups (the seven rows
    of Table II).

    Descriptions are plain text, one directive per line:
    {v
    arch arya
    cores 36
    cache_line 64
    vector_bits 256
    clock_ghz 2.3
    peak_gflops 36.8
    mem_gbps 68.0
    no_counter FP_INS
    category int_arith_add addq incq
    group "Integer arithmetic instruction" int_arith_add int_arith_sub
    v} *)

type t = {
  name : string;
  cores : int;
  cache_line_bytes : int;
  vector_bits : int;
  clock_ghz : float;
  peak_gflops : float;
  mem_gbps : float;
  unavailable_counters : string list;
  categories : (string * string list) list;
      (** fine category -> mnemonics *)
  groups : (string * string list) list;
      (** display group -> fine categories *)
  costs : (string * float) list;
      (** fine category -> issue cost in cycles ([cost] directives);
          unlisted categories cost 1 cycle *)
}

exception Parse_error of string * int  (** message, line *)

val parse : string -> t
(** @raise Parse_error on malformed directives. *)

val to_text : t -> string
(** Render back to the file format ([parse (to_text a)] = [a] up to
    ordering). *)

val load : string -> t
(** Read a description file from disk. *)

val category_of_mnemonic : t -> string -> string option
val group_of_mnemonic : t -> string -> string option

val n_categories : t -> int

val counter_available : t -> string -> bool
(** [counter_available t "FP_INS"] is false on machines that lack the
    counter. *)

val aggregate :
  t -> (string * int) list -> (string * int) list
(** Fold per-mnemonic counts into per-display-group counts, in group
    declaration order (groups with zero count included). *)

val vector_lanes : t -> int
(** Doubles per vector register: [vector_bits / 64]. *)

val cost_of_category : t -> string -> float
val cost_of_mnemonic : t -> string -> float

val validate : t -> (unit, string list) result
(** Every ISA mnemonic categorized, every category in at most one
    group, group references resolve. *)

val arya : t
(** Haswell-like preset: 2× 18 cores, 256-bit vectors, no FP_INS
    counter. *)

val frankenstein : t
(** Nehalem-like preset: 2× 4 cores, 128-bit vectors, FP_INS
    available. *)
