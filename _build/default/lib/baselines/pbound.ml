open Mira_srclang
open Mira_srclang.Ast

type op =
  [ `Fadd | `Fsub | `Fmul | `Fdiv | `Fneg | `Cmp | `Load | `Store
  | `Iop | `Call | `Cvt ]

let op_name : op -> string = function
  | `Fadd -> "fadd"
  | `Fsub -> "fsub"
  | `Fmul -> "fmul"
  | `Fdiv -> "fdiv"
  | `Fneg -> "fneg"
  | `Cmp -> "cmp"
  | `Load -> "load"
  | `Store -> "store"
  | `Iop -> "iop"
  | `Call -> "call"
  | `Cvt -> "cvt"

let mangle (f : func) =
  match f.fclass with None -> f.fname | Some c -> c ^ "::" ^ f.fname

(* Source operations contributed by one expression node (children are
   visited separately by the traversal). *)
let ops_of_expr (e : expr) : op list =
  let is_double = e.ety = Some Tdouble in
  match e.e with
  | Int_lit _ | Float_lit _ | Var _ -> []
  | Index _ | Field _ -> [ `Load ]
  | Call _ | Method_call _ -> [ `Call ]
  | Binop (Add, _, _) -> if is_double then [ `Fadd ] else [ `Iop ]
  | Binop (Sub, _, _) -> if is_double then [ `Fsub ] else [ `Iop ]
  | Binop (Mul, _, _) -> if is_double then [ `Fmul ] else [ `Iop ]
  | Binop (Div, _, _) -> if is_double then [ `Fdiv ] else [ `Iop ]
  | Binop (Mod, _, _) -> [ `Iop ]
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne), _, _) -> [ `Cmp ]
  | Binop ((Land | Lor), _, _) -> [ `Iop ]
  | Unop (Neg, _) -> if is_double then [ `Fneg ] else [ `Iop ]
  | Unop (Lnot, _) -> [ `Iop ]
  | Cast _ -> [ `Cvt ]

let is_memory_lvalue (lv : lvalue) =
  match lv.l with Lvar _ -> false | Lindex _ | Lfield _ -> true

let collect_function (f : func) : (Loc.pos * string) array =
  let items = ref [] in
  let add pos (op : op) = items := (pos, op_name op) :: !items in
  let on_expr (e : expr) = List.iter (add e.espan.lo) (ops_of_expr e) in
  let on_stmt (st : stmt) =
    iter_exprs_of_stmt on_expr st;
    match st.s with
    | Assign (lv, _) when is_memory_lvalue lv -> add lv.lspan.lo `Store
    | Op_assign (op, lv, rhs) ->
        if is_memory_lvalue lv then begin
          add lv.lspan.lo `Load;
          add lv.lspan.lo `Store
        end;
        let double = rhs.ety = Some Tdouble in
        add lv.lspan.lo
          (match (op, double) with
          | Add, true -> `Fadd
          | Sub, true -> `Fsub
          | Mul, true -> `Fmul
          | Div, true -> `Fdiv
          | _ -> `Iop)
    | _ -> ()
  in
  iter_stmts on_stmt f.fbody;
  Array.of_list (List.rev !items)

let analyze ?(source_name = "<memory>") source =
  let ast = Typecheck.check_exn (Parser.parse source) in
  let items =
    List.map (fun f -> (mangle f, collect_function f)) (all_functions ast)
  in
  let bridge = Mira_core.Bridge.of_items items in
  Mira_core.Metric_gen.build ~source_name ast bridge

let flops counts =
  List.fold_left
    (fun acc op -> acc +. Mira_core.Model_eval.count counts op)
    0.0
    [ "fadd"; "fsub"; "fmul"; "fdiv"; "fneg" ]

let mem_refs counts =
  Mira_core.Model_eval.count counts "load"
  +. Mira_core.Model_eval.count counts "store"
