(** PBound-style source-only static analysis (the paper's comparator,
    [1]).

    Counts {e source-level operations} — floating-point arithmetic,
    array loads/stores, integer arithmetic — multiplied by the same
    polyhedral iteration counts Mira uses, but without ever looking at
    the binary.  Compiler effects (folded constants, strength
    reduction, operand copies, address arithmetic, loop-control
    overhead) are invisible to it, which is exactly the accuracy gap
    the paper attributes to source-only estimation. *)

type op =
  [ `Fadd | `Fsub | `Fmul | `Fdiv | `Fneg | `Cmp | `Load | `Store
  | `Iop | `Call | `Cvt ]

val op_name : op -> string

val analyze : ?source_name:string -> string -> Mira_core.Model_ir.t
(** Build a source-operation model for every function in the given
    mini-C source.  Counts are keyed by {!op_name} strings. *)

val flops : (string * float) list -> float
(** Source floating-point operations in an evaluated model. *)

val mem_refs : (string * float) list -> float
(** Source loads + stores. *)
