lib/baselines/tau.mli: Format Mira_arch Mira_vm
