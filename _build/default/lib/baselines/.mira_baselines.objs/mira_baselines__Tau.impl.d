lib/baselines/tau.ml: Format List Mira_arch Mira_core Mira_vm
