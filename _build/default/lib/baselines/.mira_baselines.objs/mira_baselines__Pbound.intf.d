lib/baselines/pbound.mli: Mira_core
