lib/baselines/pbound.ml: Array List Loc Mira_core Mira_srclang Parser Typecheck
