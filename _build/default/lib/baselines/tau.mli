(** TAU/PAPI-style dynamic measurement, as the paper's validation
    baseline (§II-C, §IV).

    Wraps the VM's call-stack-attributed counters behind a
    hardware-counter interface: measurements are requested by PAPI
    counter name and honour the architecture description's counter
    availability — requesting [FP_INS] on the Haswell-like [arya]
    preset fails, reproducing the paper's observation that static
    analysis may be the only way to obtain FP counts on such machines
    (§IV-D1). *)

type measurement = {
  fn : string;
  calls : int;
  value : float;  (** counter total, inclusive *)
  per_call : float;
}

type error =
  | Counter_unavailable of string  (** counter, as on Haswell FP_INS *)
  | No_profile of string  (** function never executed *)
  | Unknown_counter of string

val counters : string list
(** Supported counter names: TOT_INS, FP_INS, FP_ARITH, LD_INS,
    SR_INS, BR_INS. *)

val measure :
  arch:Mira_arch.Archdesc.t ->
  Mira_vm.Vm.t ->
  string ->
  string ->
  (measurement, error) result
(** [measure ~arch vm counter fn] reads counter [counter] for function
    [fn] from an executed machine. *)

val pp_error : Format.formatter -> error -> unit
