type measurement = { fn : string; calls : int; value : float; per_call : float }

type error =
  | Counter_unavailable of string
  | No_profile of string
  | Unknown_counter of string

let counters = [ "TOT_INS"; "FP_INS"; "FP_ARITH"; "LD_INS"; "SR_INS"; "BR_INS" ]

(* Which mnemonics each PAPI-style counter retires. *)
let mnemonics_of_counter = function
  | "TOT_INS" -> Some None  (* all *)
  | "FP_INS" | "FP_ARITH" -> Some (Some Mira_core.Model_eval.fp_mnemonics)
  | "LD_INS" -> Some (Some [ "movsd"; "movapd"; "movq" ])
  | "SR_INS" -> Some (Some [ "movsd"; "movapd"; "movq" ])
  | "BR_INS" ->
      Some (Some [ "jmp"; "je"; "jne"; "jl"; "jle"; "jg"; "jge"; "call"; "ret" ])
  | _ -> None

let measure ~arch vm counter fn =
  match mnemonics_of_counter counter with
  | None -> Error (Unknown_counter counter)
  | Some selection -> (
      if not (Mira_arch.Archdesc.counter_available arch counter) then
        Error (Counter_unavailable counter)
      else
        match Mira_vm.Vm.profile_of vm fn with
        | None -> Error (No_profile fn)
        | Some p ->
            let value =
              match selection with
              | None ->
                  List.fold_left
                    (fun acc (_, c) -> acc +. float_of_int c)
                    0.0 p.inclusive
              | Some mns ->
                  List.fold_left
                    (fun acc m ->
                      acc +. float_of_int (Mira_vm.Vm.count_of p m))
                    0.0 mns
            in
            Ok
              {
                fn;
                calls = p.calls;
                value;
                per_call =
                  (if p.calls = 0 then 0.0 else value /. float_of_int p.calls);
              })

let pp_error ppf = function
  | Counter_unavailable c ->
      Format.fprintf ppf
        "hardware counter %s is not supported on this architecture" c
  | No_profile f -> Format.fprintf ppf "function %s was never executed" f
  | Unknown_counter c -> Format.fprintf ppf "unknown counter %s" c
