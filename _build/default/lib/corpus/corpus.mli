(** The mini-C benchmark corpus: STREAM, DGEMM, the miniFE-like
    mini-app, nine polybench-style kernels, and four further mini-apps
    (nbody, cholesky, histogram, correlation).

    Sources are embedded strings (write them out with {!dump} for use
    with the CLI).  The [run_*] helpers set up VM memory and execute
    the paper's workloads, returning the measured machine for counter
    inspection. *)

val stream : string
val dgemm : string
val minife : string

val all : (string * string) list
(** (name, source) for every corpus program, evaluation apps first. *)

val find : string -> string option

val dump : dir:string -> unit
(** Write every program to [dir/<name>.mc]. *)

(* -- workload drivers (the paper's measurement configurations) -- *)

val run_stream : n:int -> ntimes:int -> Mira_vm.Vm.t
(** Allocate the three arrays and run [stream_driver]. *)

val run_dgemm : n:int -> Mira_vm.Vm.t

type minife_run = {
  vm : Mira_vm.Vm.t;
  nrows : int;
  final_norm : float;
}

val run_minife : nx:int -> ny:int -> nz:int -> max_iter:int -> minife_run
(** Assemble the brick-mesh matrix in the VM and run [cg_solve]. *)
