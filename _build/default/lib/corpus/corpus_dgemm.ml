(* DGEMM (HPCC-style) in mini-C: C = alpha*A*B + beta*C on n x n
   matrices stored row-major in flat arrays.  FPI is dominated by the
   2*n^3 multiply-add inner loop, as in the paper's Table IV. *)

let source =
  {|// DGEMM: double-precision matrix-matrix multiply
void dgemm(int n, double alpha, double *a, double *b, double beta, double *c) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      double s = 0.0;
      for (int k = 0; k < n; k++) {
        s += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = alpha * s + beta * c[i * n + j];
    }
  }
}

// Reference checksum so results can be validated cheaply.
double matrix_checksum(double *c, int n) {
  double s = 0.0;
  for (int i = 0; i < n * n; i++) {
    s += c[i];
  }
  return s;
}

int main() {
  int n = 24;
  double a[n * n];
  double b[n * n];
  double c[n * n];
  for (int i = 0; i < n * n; i++) {
    a[i] = 1.0;
    b[i] = 0.5;
    c[i] = 0.0;
  }
  dgemm(n, 1.0, a, b, 0.0, c);
  double s = matrix_checksum(c, n);
  if (s > 0.0) {
    return 0;
  }
  return 1;
}
|}
