(* A miniFE-like finite-element mini-application in mini-C (paper
   §IV-C): assembles a 27-point stencil over an nx*ny*nz brick mesh
   into an ELLPACK-padded CSR matrix and solves with fixed-iteration
   unpreconditioned conjugate gradient.  The call tree matches the
   paper's Table V: cg_solve -> matvec_std::operator() (here
   matvec_std::apply), waxpby and dot, with sqrt as the external
   library call that static analysis cannot see into. *)

let source =
  {|// miniFE-like mini-app: 27-point stencil assembly + CG solve
extern double sqrt(double);

// Assemble the 27-point stencil matrix in padded CSR layout:
// every row holds exactly 27 slots (absent neighbours padded with
// zero coefficients pointing at column 0), so row i occupies
// [27*i, 27*(i+1)).
void assemble(int nx, int ny, int nz, int *row_ptr, int *col_idx, double *vals) {
  for (int iz = 0; iz < nz; iz++) {
    for (int iy = 0; iy < ny; iy++) {
      for (int ix = 0; ix < nx; ix++) {
        int row = ix + nx * iy + nx * ny * iz;
        row_ptr[row] = 27 * row;
        int slot = 27 * row;
        for (int dz = -1; dz <= 1; dz++) {
          for (int dy = -1; dy <= 1; dy++) {
            for (int dx = -1; dx <= 1; dx++) {
              int jx = ix + dx;
              int jy = iy + dy;
              int jz = iz + dz;
              col_idx[slot] = 0;
              vals[slot] = 0.0;
              if (jx >= 0 && jx < nx && jy >= 0 && jy < ny && jz >= 0 && jz < nz) {
                int col = jx + nx * jy + nx * ny * jz;
                col_idx[slot] = col;
                if (col == row) {
                  vals[slot] = 26.0;
                } else {
                  vals[slot] = 0.0 - 1.0;
                }
              }
              slot = slot + 1;
            }
          }
        }
      }
    }
  }
  row_ptr[nx * ny * nz] = 27 * nx * ny * nz;
}

double dot(double *x, double *y, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += x[i] * y[i];
  }
  return s;
}

// w = alpha * x + beta * y
void waxpby(double alpha, double *x, double beta, double *y, double *w, int n) {
  for (int i = 0; i < n; i++) {
    w[i] = alpha * x[i] + beta * y[i];
  }
}

class matvec_std {
  int nnz_per_row;
  // y = A * x for the padded CSR matrix
  void apply(int nrows, int *row_ptr, int *col_idx, double *vals, double *x, double *y) {
    for (int i = 0; i < nrows; i++) {
      double sum = 0.0;
      int first = row_ptr[i];
      #pragma @Annotation {iters:27}
      for (int k = first; k < first + 27; k++) {
        sum += vals[k] * x[col_idx[k]];
      }
      y[i] = sum;
    }
  }
};

// Unpreconditioned CG, fixed iteration count (miniFE's default mode:
// run max_iter iterations, track the residual norm).
double cg_solve(int nrows, int *row_ptr, int *col_idx, double *vals,
                double *b, double *x, double *r, double *p, double *Ap,
                int max_iter) {
  matvec_std A;
  // x = 0, r = b, p = r
  waxpby(0.0, b, 0.0, b, x, nrows);
  waxpby(1.0, b, 0.0, b, r, nrows);
  waxpby(1.0, r, 0.0, r, p, nrows);
  double rtrans = dot(r, r, nrows);
  double normr = sqrt(rtrans);
  for (int iter = 0; iter < max_iter; iter++) {
    A.apply(nrows, row_ptr, col_idx, vals, p, Ap);
    double alpha = rtrans / dot(p, Ap, nrows);
    waxpby(1.0, x, alpha, p, x, nrows);
    waxpby(1.0, r, 0.0 - alpha, Ap, r, nrows);
    double rtrans_new = dot(r, r, nrows);
    double beta = rtrans_new / rtrans;
    rtrans = rtrans_new;
    waxpby(1.0, r, beta, p, p, nrows);
    normr = sqrt(rtrans);
  }
  return normr;
}

// Assemble and solve a small default problem.
int main() {
  int nx = 6;
  int ny = 6;
  int nz = 6;
  int nrows = nx * ny * nz;
  int row_ptr[nrows + 1];
  int col_idx[27 * nrows];
  double vals[27 * nrows];
  double b[nrows];
  double x[nrows];
  double r[nrows];
  double p[nrows];
  double Ap[nrows];
  assemble(nx, ny, nz, row_ptr, col_idx, vals);
  for (int i = 0; i < nrows; i++) {
    b[i] = 1.0;
  }
  double normr = cg_solve(nrows, row_ptr, col_idx, vals, b, x, r, p, Ap, 25);
  if (normr < 1000000.0) {
    return 0;
  }
  return 1;
}
|}
