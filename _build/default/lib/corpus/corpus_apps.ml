(* Additional mini-apps rounding out the corpus: FP-heavy kernels with
   external math calls (the error source §IV-D1 discusses), triangular
   factorizations, and data-dependent (scatter) access. *)

let nbody =
  {|// nbody: O(n^2) gravitational force accumulation
extern double sqrt(double);

void accumulate_forces(double *px, double *py, double *fx, double *fy, int n) {
  for (int i = 0; i < n; i++) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    for (int j = 0; j < n; j++) {
      if (j != i) {
        double dx = px[j] - px[i];
        double dy = py[j] - py[i];
        double r2 = dx * dx + dy * dy + 0.0001;
        double r = sqrt(r2);
        double f = 1.0 / (r2 * r);
        fx[i] += f * dx;
        fy[i] += f * dy;
      }
    }
  }
}

void step(double *px, double *py, double *vx, double *vy,
          double *fx, double *fy, double dt, int n) {
  accumulate_forces(px, py, fx, fy, n);
  for (int i = 0; i < n; i++) {
    vx[i] += dt * fx[i];
    vy[i] += dt * fy[i];
    px[i] += dt * vx[i];
    py[i] += dt * vy[i];
  }
}

int main() {
  int n = 24;
  double px[n];
  double py[n];
  double vx[n];
  double vy[n];
  double fx[n];
  double fy[n];
  for (int i = 0; i < n; i++) {
    px[i] = i * 1.0;
    py[i] = i * 0.5;
    vx[i] = 0.0;
    vy[i] = 0.0;
  }
  for (int t = 0; t < 3; t++) {
    step(px, py, vx, vy, fx, fy, 0.01, n);
  }
  return 0;
}
|}

let cholesky =
  {|// cholesky: in-place factorization of an SPD matrix
extern double sqrt(double);

void cholesky(double *a, int n) {
  for (int j = 0; j < n; j++) {
    for (int k = 0; k < j; k++) {
      for (int i = j; i < n; i++) {
        a[i * n + j] = a[i * n + j] - a[i * n + k] * a[j * n + k];
      }
    }
    a[j * n + j] = sqrt(a[j * n + j]);
    for (int i = j + 1; i < n; i++) {
      a[i * n + j] = a[i * n + j] / a[j * n + j];
    }
  }
}

int main() {
  int n = 16;
  double a[n * n];
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      if (i == j) {
        a[i * n + j] = n + 1.0;
      } else {
        a[i * n + j] = 1.0;
      }
    }
  }
  cholesky(a, n);
  return 0;
}
|}

let histogram =
  {|// histogram: data-dependent scatter increments
void histogram(int *data, int *bins, int n, int nbins) {
  for (int b = 0; b < nbins; b++) {
    bins[b] = 0;
  }
  for (int i = 0; i < n; i++) {
    int b = data[i] % nbins;
    bins[b] += 1;
  }
}

int max_bin(int *bins, int nbins) {
  int best = 0;
  for (int b = 1; b < nbins; b++) {
    if (bins[b] > bins[best]) {
      best = b;
    }
  }
  return best;
}

int main() {
  int n = 512;
  int nbins = 16;
  int data[n];
  int bins[nbins];
  for (int i = 0; i < n; i++) {
    data[i] = i * 7 + 3;
  }
  histogram(data, bins, n, nbins);
  int best = max_bin(bins, nbins);
  if (best >= 0) {
    return 0;
  }
  return 1;
}
|}

let correlation =
  {|// correlation: means, stddevs and the correlation matrix
extern double sqrt(double);

void column_stats(double *data, double *mean, double *stddev, int n, int m) {
  for (int j = 0; j < m; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++) {
      mean[j] += data[i * m + j];
    }
    mean[j] = mean[j] / n;
    stddev[j] = 0.0;
    for (int i = 0; i < n; i++) {
      double d = data[i * m + j] - mean[j];
      stddev[j] += d * d;
    }
    stddev[j] = sqrt(stddev[j] / n) + 0.000001;
  }
}

void correlation(double *data, double *mean, double *stddev, double *corr, int n, int m) {
  column_stats(data, mean, stddev, n, m);
  for (int j1 = 0; j1 < m; j1++) {
    for (int j2 = 0; j2 < m; j2++) {
      double s = 0.0;
      for (int i = 0; i < n; i++) {
        s += (data[i * m + j1] - mean[j1]) * (data[i * m + j2] - mean[j2]);
      }
      corr[j1 * m + j2] = s / (n * stddev[j1] * stddev[j2]);
    }
  }
}

int main() {
  int n = 48;
  int m = 8;
  double data[n * m];
  double mean[m];
  double stddev[m];
  double corr[m * m];
  for (int i = 0; i < n * m; i++) {
    data[i] = (i % 13) * 0.5;
  }
  correlation(data, mean, stddev, corr, n, m);
  return 0;
}
|}
