(* Polybench-style kernels rounding out the loop-coverage corpus
   (Table I) and exercising analysis paths: 2D/3D stencils (flattened
   indexing), triangular factorization loops, multi-kernel chains. *)

let jacobi2d =
  {|// jacobi-2d: 5-point relaxation with ping-pong buffers
void jacobi_step(double *a, double *b, int n) {
  for (int i = 1; i < n - 1; i++) {
    for (int j = 1; j < n - 1; j++) {
      b[i * n + j] = 0.2 * (a[i * n + j] + a[i * n + j - 1] + a[i * n + j + 1]
                            + a[(i - 1) * n + j] + a[(i + 1) * n + j]);
    }
  }
}

void jacobi2d(double *a, double *b, int n, int tsteps) {
  for (int t = 0; t < tsteps; t++) {
    jacobi_step(a, b, n);
    jacobi_step(b, a, n);
  }
}

int main() {
  int n = 32;
  double a[n * n];
  double b[n * n];
  for (int i = 0; i < n * n; i++) {
    a[i] = 1.0;
    b[i] = 0.0;
  }
  jacobi2d(a, b, n, 4);
  return 0;
}
|}

let heat3d =
  {|// heat-3d: 7-point explicit heat equation step
void heat_step(double *u, double *v, int n, double dt) {
  for (int i = 1; i < n - 1; i++) {
    for (int j = 1; j < n - 1; j++) {
      for (int k = 1; k < n - 1; k++) {
        int c = i * n * n + j * n + k;
        v[c] = u[c] + dt * (u[c - 1] + u[c + 1] + u[c - n] + u[c + n]
                            + u[c - n * n] + u[c + n * n] - 6.0 * u[c]);
      }
    }
  }
}

void heat3d(double *u, double *v, int n, int tsteps, double dt) {
  for (int t = 0; t < tsteps; t++) {
    heat_step(u, v, n, dt);
    heat_step(v, u, n, dt);
  }
}

int main() {
  int n = 12;
  double u[n * n * n];
  double v[n * n * n];
  for (int i = 0; i < n * n * n; i++) {
    u[i] = 1.0;
    v[i] = 0.0;
  }
  heat3d(u, v, n, 3, 0.1);
  return 0;
}
|}

let lu =
  {|// lu: in-place LU decomposition without pivoting (triangular nests)
void lu(double *a, int n) {
  for (int k = 0; k < n; k++) {
    for (int i = k + 1; i < n; i++) {
      a[i * n + k] = a[i * n + k] / a[k * n + k];
      for (int j = k + 1; j < n; j++) {
        a[i * n + j] = a[i * n + j] - a[i * n + k] * a[k * n + j];
      }
    }
  }
}

int main() {
  int n = 24;
  double a[n * n];
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      if (i == j) {
        a[i * n + j] = n * 1.0;
      } else {
        a[i * n + j] = 1.0;
      }
    }
  }
  lu(a, n);
  return 0;
}
|}

let fdtd2d =
  {|// fdtd-2d: finite-difference time-domain over a 2D grid
void fdtd_step(double *ex, double *ey, double *hz, int nx, int ny, double t) {
  for (int j = 0; j < ny; j++) {
    ey[j] = t;
  }
  for (int i = 1; i < nx; i++) {
    for (int j = 0; j < ny; j++) {
      ey[i * ny + j] = ey[i * ny + j] - 0.5 * (hz[i * ny + j] - hz[(i - 1) * ny + j]);
    }
  }
  for (int i = 0; i < nx; i++) {
    for (int j = 1; j < ny; j++) {
      ex[i * ny + j] = ex[i * ny + j] - 0.5 * (hz[i * ny + j] - hz[i * ny + j - 1]);
    }
  }
  for (int i = 0; i < nx - 1; i++) {
    for (int j = 0; j < ny - 1; j++) {
      hz[i * ny + j] = hz[i * ny + j]
        - 0.7 * (ex[i * ny + j + 1] - ex[i * ny + j]
                 + ey[(i + 1) * ny + j] - ey[i * ny + j]);
    }
  }
}

void fdtd2d(double *ex, double *ey, double *hz, int nx, int ny, int tsteps) {
  for (int t = 0; t < tsteps; t++) {
    fdtd_step(ex, ey, hz, nx, ny, t * 1.0);
  }
}

int main() {
  int nx = 24;
  int ny = 20;
  double ex[nx * ny];
  double ey[nx * ny];
  double hz[nx * ny];
  for (int i = 0; i < nx * ny; i++) {
    ex[i] = 0.0;
    ey[i] = 0.0;
    hz[i] = 1.0;
  }
  fdtd2d(ex, ey, hz, nx, ny, 5);
  return 0;
}
|}

let stencil9 =
  {|// stencil9: 9-point weighted stencil with boundary branch
void stencil9(double *in, double *out, int n) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      if (i > 0 && i < n - 1 && j > 0 && j < n - 1) {
        out[i * n + j] =
          0.4 * in[i * n + j]
          + 0.1 * (in[(i - 1) * n + j] + in[(i + 1) * n + j]
                   + in[i * n + j - 1] + in[i * n + j + 1])
          + 0.05 * (in[(i - 1) * n + j - 1] + in[(i - 1) * n + j + 1]
                    + in[(i + 1) * n + j - 1] + in[(i + 1) * n + j + 1]);
      } else {
        out[i * n + j] = in[i * n + j];
      }
    }
  }
}

int main() {
  int n = 32;
  double a[n * n];
  double b[n * n];
  for (int i = 0; i < n * n; i++) {
    a[i] = 1.0;
  }
  stencil9(a, b, n);
  return 0;
}
|}

let saxpy =
  {|// saxpy chain: repeated y = alpha*x + y with norm tracking
extern double sqrt(double);

void saxpy(double alpha, double *x, double *y, int n) {
  for (int i = 0; i < n; i++) {
    y[i] = alpha * x[i] + y[i];
  }
}

double norm2(double *x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += x[i] * x[i];
  }
  return sqrt(s);
}

double saxpy_chain(double *x, double *y, int n, int reps) {
  double nrm = 0.0;
  for (int r = 0; r < reps; r++) {
    saxpy(0.5, x, y, n);
    nrm = norm2(y, n);
  }
  return nrm;
}

int main() {
  int n = 512;
  double x[n];
  double y[n];
  for (int i = 0; i < n; i++) {
    x[i] = 1.0;
    y[i] = 2.0;
  }
  double nrm = saxpy_chain(x, y, n, 8);
  if (nrm > 0.0) {
    return 0;
  }
  return 1;
}
|}

let bicg =
  {|// bicg: the BiCG kernel's two matrix-vector products
void bicg(double *a, double *s, double *q, double *p, double *r, int nx, int ny) {
  for (int j = 0; j < ny; j++) {
    s[j] = 0.0;
  }
  for (int i = 0; i < nx; i++) {
    q[i] = 0.0;
    for (int j = 0; j < ny; j++) {
      s[j] = s[j] + r[i] * a[i * ny + j];
      q[i] = q[i] + a[i * ny + j] * p[j];
    }
  }
}

int main() {
  int nx = 40;
  int ny = 36;
  double a[nx * ny];
  double s[ny];
  double q[nx];
  double p[ny];
  double r[nx];
  for (int i = 0; i < nx * ny; i++) {
    a[i] = 0.5;
  }
  for (int j = 0; j < ny; j++) {
    p[j] = 1.0;
  }
  for (int i = 0; i < nx; i++) {
    r[i] = 2.0;
  }
  bicg(a, s, q, p, r, nx, ny);
  return 0;
}
|}

let mvt =
  {|// mvt: two transposed matrix-vector products
void mvt(double *a, double *x1, double *x2, double *y1, double *y2, int n) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      x1[i] = x1[i] + a[i * n + j] * y1[j];
    }
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      x2[i] = x2[i] + a[j * n + i] * y2[j];
    }
  }
}

int main() {
  int n = 40;
  double a[n * n];
  double x1[n];
  double x2[n];
  double y1[n];
  double y2[n];
  for (int i = 0; i < n * n; i++) {
    a[i] = 0.25;
  }
  for (int i = 0; i < n; i++) {
    x1[i] = 0.0;
    x2[i] = 0.0;
    y1[i] = 1.0;
    y2[i] = 2.0;
  }
  mvt(a, x1, x2, y1, y2, n);
  return 0;
}
|}

let gemver =
  {|// gemver: vector multiplication and matrix addition composite
void gemver(double *a, double *u1, double *v1, double *u2, double *v2,
            double *w, double *x, double *y, double *z,
            double alpha, double beta, int n) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      a[i * n + j] = a[i * n + j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      x[i] = x[i] + beta * a[j * n + i] * y[j];
    }
  }
  for (int i = 0; i < n; i++) {
    x[i] = x[i] + z[i];
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      w[i] = w[i] + alpha * a[i * n + j] * x[j];
    }
  }
}

int main() {
  int n = 36;
  double a[n * n];
  double u1[n];
  double v1[n];
  double u2[n];
  double v2[n];
  double w[n];
  double x[n];
  double y[n];
  double z[n];
  for (int i = 0; i < n * n; i++) {
    a[i] = 0.1;
  }
  for (int i = 0; i < n; i++) {
    u1[i] = 1.0; v1[i] = 2.0; u2[i] = 3.0; v2[i] = 4.0;
    w[i] = 0.0; x[i] = 0.0; y[i] = 0.5; z[i] = 0.25;
  }
  gemver(a, u1, v1, u2, v2, w, x, y, z, 1.5, 1.2, n);
  return 0;
}
|}
