(* The STREAM benchmark (McCalpin) in mini-C: the four kernels plus
   the standard driver that runs `ntimes` repetitions.  FP instruction
   counts per repetition: copy 0, scale n, add n, triad 2n — so the
   driver's FPI is 4*n*ntimes, matching the paper's Table III numbers
   (8.239E7 for n = 2M with the standard 10 repetitions). *)

let source =
  {|// STREAM: sustainable memory bandwidth kernels
void stream_copy(double *a, double *b, int n) {
  for (int i = 0; i < n; i++) {
    b[i] = a[i];
  }
}

void stream_scale(double *b, double *c, double scalar, int n) {
  for (int i = 0; i < n; i++) {
    c[i] = scalar * b[i];
  }
}

void stream_add(double *a, double *b, double *c, int n) {
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}

void stream_triad(double *a, double *b, double *c, double scalar, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + scalar * c[i];
  }
}

void stream_driver(double *a, double *b, double *c, double scalar, int n, int ntimes) {
  for (int k = 0; k < ntimes; k++) {
    stream_copy(a, c, n);
    stream_scale(b, c, scalar, n);
    stream_add(a, b, c, n);
    stream_triad(a, b, c, scalar, n);
  }
}

int main() {
  int n = 1000;
  double a[n];
  double b[n];
  double c[n];
  for (int i = 0; i < n; i++) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }
  stream_driver(a, b, c, 3.0, n, 10);
  return 0;
}
|}
