let stream = Corpus_stream.source
let dgemm = Corpus_dgemm.source
let minife = Corpus_minife.source

let all =
  [
    ("stream", stream);
    ("dgemm", dgemm);
    ("minife", minife);
    ("jacobi2d", Corpus_kernels.jacobi2d);
    ("heat3d", Corpus_kernels.heat3d);
    ("lu", Corpus_kernels.lu);
    ("fdtd2d", Corpus_kernels.fdtd2d);
    ("stencil9", Corpus_kernels.stencil9);
    ("saxpy", Corpus_kernels.saxpy);
    ("bicg", Corpus_kernels.bicg);
    ("mvt", Corpus_kernels.mvt);
    ("gemver", Corpus_kernels.gemver);
    ("nbody", Corpus_apps.nbody);
    ("cholesky", Corpus_apps.cholesky);
    ("histogram", Corpus_apps.histogram);
    ("correlation", Corpus_apps.correlation);
  ]

let find name = List.assoc_opt name all

let dump ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, src) ->
      let oc = open_out (Filename.concat dir (name ^ ".mc")) in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc src))
    all

(* ---------- workload drivers ---------- *)

open Mira_vm

let compile_corpus src =
  (* route through object encoding so drivers measure exactly what
     Mira analyzes *)
  Vm.load_object
    ~step_limit:4_000_000_000
    (Mira_codegen.Codegen.compile_to_object src)

let run_stream ~n ~ntimes =
  let vm = compile_corpus stream in
  let a = Vm.zeros_f vm n in
  let b = Vm.zeros_f vm n in
  let c = Vm.zeros_f vm n in
  (* STREAM's standard initialization *)
  ignore
    (Vm.call vm "stream_driver"
       [ Int a; Int b; Int c; Double 3.0; Int n; Int ntimes ]);
  vm

let run_dgemm ~n =
  let vm = compile_corpus dgemm in
  let a = Vm.alloc_floats vm (Array.make (n * n) 1.0) in
  let b = Vm.alloc_floats vm (Array.make (n * n) 0.5) in
  let c = Vm.zeros_f vm (n * n) in
  ignore
    (Vm.call vm "dgemm"
       [ Int n; Double 1.0; Int a; Int b; Double 0.0; Int c ]);
  vm

type minife_run = { vm : Vm.t; nrows : int; final_norm : float }

let run_minife ~nx ~ny ~nz ~max_iter =
  let vm = compile_corpus minife in
  let nrows = nx * ny * nz in
  let row_ptr = Vm.zeros_i vm (nrows + 1) in
  let col_idx = Vm.zeros_i vm (27 * nrows) in
  let vals = Vm.zeros_f vm (27 * nrows) in
  let b = Vm.alloc_floats vm (Array.make nrows 1.0) in
  let x = Vm.zeros_f vm nrows in
  let r = Vm.zeros_f vm nrows in
  let p = Vm.zeros_f vm nrows in
  let ap = Vm.zeros_f vm nrows in
  ignore
    (Vm.call vm "assemble"
       [ Int nx; Int ny; Int nz; Int row_ptr; Int col_idx; Int vals ]);
  (* measure cg_solve in isolation, like the paper's per-function
     TAU numbers *)
  Vm.reset_counters vm;
  let final_norm =
    match
      Vm.call vm "cg_solve"
        [ Int nrows; Int row_ptr; Int col_idx; Int vals; Int b; Int x;
          Int r; Int p; Int ap; Int max_iter ]
    with
    | Double v -> v
    | _ -> invalid_arg "cg_solve did not return a double"
  in
  { vm; nrows; final_norm }
