lib/corpus/corpus_stream.ml:
