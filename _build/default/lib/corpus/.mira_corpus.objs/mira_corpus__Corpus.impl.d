lib/corpus/corpus.ml: Array Corpus_apps Corpus_dgemm Corpus_kernels Corpus_minife Corpus_stream Filename Fun List Mira_codegen Mira_vm Sys Vm
