lib/corpus/corpus_apps.ml:
