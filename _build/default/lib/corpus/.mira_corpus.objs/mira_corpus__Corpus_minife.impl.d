lib/corpus/corpus_minife.ml:
