lib/corpus/corpus_dgemm.ml:
