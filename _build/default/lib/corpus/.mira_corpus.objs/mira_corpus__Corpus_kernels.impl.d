lib/corpus/corpus_kernels.ml:
