lib/corpus/corpus.mli: Mira_vm
