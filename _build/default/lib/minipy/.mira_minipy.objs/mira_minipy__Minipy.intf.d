lib/minipy/minipy.mli: Format Hashtbl
