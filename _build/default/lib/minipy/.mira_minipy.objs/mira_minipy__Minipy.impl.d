lib/minipy/minipy.ml: Buffer Float Format Hashtbl List Option String
