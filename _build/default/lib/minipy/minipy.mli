(** A small Python interpreter for the subset Mira's Model Generator
    emits (paper Figure 5): function definitions, dict-accumulator
    bodies, [for k in d:] loops, arithmetic with [//], conditional
    expressions, [max]/[min]/[d.get].

    The test suite runs the emitted Python model text through this
    interpreter and checks it against {!Mira_core.Model_eval} — the
    generated artifact itself is validated, not just the IR. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | None_
  | Dict of (value, value) Hashtbl.t
  | Func of string  (** function object, by name *)

exception Error of string

val run : string -> (string * value list -> value)
(** [run source] executes the module top level (function definitions)
    and returns a caller: [call ("name", args)] invokes a defined
    function.
    @raise Error on syntax or runtime errors. *)

val dict_counts : value -> (string * float) list
(** Interpret a returned metric dict as mnemonic counts (sorted).
    @raise Error if the value is not a dict of string keys. *)

val to_float : value -> float
val pp : Format.formatter -> value -> unit
