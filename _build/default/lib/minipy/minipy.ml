type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | None_
  | Dict of (value, value) Hashtbl.t
  | Func of string

exception Error of string

let error fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

(* ---------- lexer (indentation-aware) ---------- *)

type token =
  | INT of int
  | FLOAT of float
  | STR of string
  | NAME of string
  | KW of string  (* def return for in if else not and or True False None *)
  | OP of string
  | NEWLINE
  | INDENT
  | DEDENT
  | TEOF

let keywords =
  [ "def"; "return"; "for"; "in"; "if"; "else"; "elif"; "not"; "and"; "or";
    "True"; "False"; "None"; "pass"; "while" ]

let tokenize src : token list =
  let lines = String.split_on_char '\n' src in
  let toks = ref [] in
  let indents = ref [ 0 ] in
  let emit t = toks := t :: !toks in
  let lex_line line =
    let n = String.length line in
    let i = ref 0 in
    let peek k = if !i + k < n then Some line.[!i + k] else None in
    let cur () = peek 0 in
    while !i < n do
      match cur () with
      | None -> i := n
      | Some '#' -> i := n
      | Some (' ' | '\t') -> incr i
      | Some c when (c >= '0' && c <= '9') ->
          let start = !i in
          while
            (match cur () with
            | Some c -> (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E'
            | None -> false)
          do
            incr i
          done;
          let s = String.sub line start (!i - start) in
          if String.contains s '.' || String.contains s 'e'
             || String.contains s 'E' then emit (FLOAT (float_of_string s))
          else emit (INT (int_of_string s))
      | Some c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
        ->
          let start = !i in
          while
            (match cur () with
            | Some c ->
                (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9') || c = '_'
            | None -> false)
          do
            incr i
          done;
          let s = String.sub line start (!i - start) in
          emit (if List.mem s keywords then KW s else NAME s)
      | Some ('"' | '\'') ->
          let quote = Option.get (cur ()) in
          incr i;
          let buf = Buffer.create 8 in
          while cur () <> Some quote && cur () <> None do
            Buffer.add_char buf (Option.get (cur ()));
            incr i
          done;
          if cur () = None then error "unterminated string";
          incr i;
          emit (STR (Buffer.contents buf))
      | Some _ ->
          let two =
            if !i + 1 < n then Some (String.sub line !i 2) else None
          in
          (match two with
          | Some (("**" | "//" | "<=" | ">=" | "==" | "!=") as op) ->
              emit (OP op);
              i := !i + 2
          | _ ->
              let c = Option.get (cur ()) in
              let singles = "+-*/%()[]{}:,=<>." in
              if String.contains singles c then begin
                emit (OP (String.make 1 c));
                incr i
              end
              else error "unexpected character %C" c)
    done
  in
  List.iter
    (fun line ->
      (* measure indentation; skip blank/comment-only lines *)
      let stripped = String.trim line in
      if stripped <> "" && stripped.[0] <> '#' then begin
        let ind = ref 0 in
        while !ind < String.length line && line.[!ind] = ' ' do
          incr ind
        done;
        let cur_ind = List.hd !indents in
        if !ind > cur_ind then begin
          indents := !ind :: !indents;
          emit INDENT
        end
        else
          while List.hd !indents > !ind do
            indents := List.tl !indents;
            emit DEDENT
          done;
        if List.hd !indents <> !ind then error "inconsistent indentation";
        lex_line line;
        emit NEWLINE
      end)
    lines;
  while List.hd !indents > 0 do
    indents := List.tl !indents;
    emit DEDENT
  done;
  emit TEOF;
  List.rev !toks

(* ---------- AST ---------- *)

type expr =
  | Enum of value  (* literal *)
  | Ename of string
  | Ecall of expr * expr list
  | Eattr of expr * string
  | Esub of expr * expr  (* d[k] *)
  | Ebin of string * expr * expr
  | Eneg of expr
  | Enot of expr
  | Econd of expr * expr * expr  (* a if c else b *)
  | Edict of (expr * expr) list

type stmt =
  | Sexpr of expr
  | Sassign of expr * expr  (* target = value; target is Ename or Esub *)
  | Sreturn of expr option
  | Sfor of string * expr * stmt list
  | Swhile of expr * stmt list
  | Sif of expr * stmt list * stmt list
  | Sdef of string * string list * stmt list
  | Spass

(* ---------- parser ---------- *)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> TEOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> TEOF
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then error "unexpected token in model source"

let expect_op st op =
  match next st with
  | OP o when o = op -> ()
  | _ -> error "expected %S" op

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let a = parse_or st in
  match peek st with
  | KW "if" ->
      ignore (next st);
      let c = parse_or st in
      (match next st with
      | KW "else" -> ()
      | _ -> error "expected else in conditional expression");
      let b = parse_ternary st in
      Econd (a, c, b)
  | _ -> a

and parse_or st =
  let a = parse_and st in
  match peek st with
  | KW "or" ->
      ignore (next st);
      Ebin ("or", a, parse_or st)
  | _ -> a

and parse_and st =
  let a = parse_not st in
  match peek st with
  | KW "and" ->
      ignore (next st);
      Ebin ("and", a, parse_and st)
  | _ -> a

and parse_not st =
  match peek st with
  | KW "not" ->
      ignore (next st);
      Enot (parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let a = parse_add st in
  match peek st with
  | OP (("<" | ">" | "<=" | ">=" | "==" | "!=") as op) ->
      ignore (next st);
      Ebin (op, a, parse_add st)
  | _ -> a

and parse_add st =
  let rec go a =
    match peek st with
    | OP (("+" | "-") as op) ->
        ignore (next st);
        go (Ebin (op, a, parse_mul st))
    | _ -> a
  in
  go (parse_mul st)

and parse_mul st =
  let rec go a =
    match peek st with
    | OP (("*" | "/" | "//" | "%") as op) ->
        ignore (next st);
        go (Ebin (op, a, parse_unary st))
    | _ -> a
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | OP "-" ->
      ignore (next st);
      Eneg (parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let a = parse_postfix st in
  match peek st with
  | OP "**" ->
      ignore (next st);
      Ebin ("**", a, parse_unary st)
  | _ -> a

and parse_postfix st =
  let rec go a =
    match peek st with
    | OP "(" ->
        ignore (next st);
        let args = parse_args st in
        go (Ecall (a, args))
    | OP "[" ->
        ignore (next st);
        let k = parse_expr st in
        expect_op st "]";
        go (Esub (a, k))
    | OP "." -> (
        ignore (next st);
        match next st with
        | NAME n -> go (Eattr (a, n))
        | _ -> error "expected attribute name")
    | _ -> a
  in
  go (parse_atom st)

and parse_args st =
  if peek st = OP ")" then begin
    ignore (next st);
    []
  end
  else
    let rec go acc =
      let e = parse_expr st in
      match next st with
      | OP "," -> go (e :: acc)
      | OP ")" -> List.rev (e :: acc)
      | _ -> error "expected , or ) in call"
    in
    go []

and parse_atom st =
  match next st with
  | INT n -> Enum (Int n)
  | FLOAT f -> Enum (Float f)
  | STR s -> Enum (Str s)
  | NAME n -> Ename n
  | KW "True" -> Enum (Bool true)
  | KW "False" -> Enum (Bool false)
  | KW "None" -> Enum None_
  | OP "(" ->
      let e = parse_expr st in
      expect_op st ")";
      e
  | OP "{" ->
      if peek st = OP "}" then begin
        ignore (next st);
        Edict []
      end
      else
        let rec go acc =
          let k = parse_expr st in
          expect_op st ":";
          let v = parse_expr st in
          match next st with
          | OP "," -> go ((k, v) :: acc)
          | OP "}" -> Edict (List.rev ((k, v) :: acc))
          | _ -> error "expected , or } in dict"
        in
        go []
  | _ -> error "unexpected token in expression"

let rec parse_block st : stmt list =
  expect st NEWLINE;
  expect st INDENT;
  let rec go acc =
    match peek st with
    | DEDENT ->
        ignore (next st);
        List.rev acc
    | TEOF -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st : stmt =
  match peek st with
  | KW "def" -> (
      ignore (next st);
      match next st with
      | NAME fname ->
          expect_op st "(";
          let params =
            if peek st = OP ")" then begin
              ignore (next st);
              []
            end
            else
              let rec go acc =
                match next st with
                | NAME p -> (
                    match next st with
                    | OP "," -> go (p :: acc)
                    | OP ")" -> List.rev (p :: acc)
                    | _ -> error "expected , or ) in params")
                | _ -> error "expected parameter name"
              in
              go []
          in
          expect_op st ":";
          let body = parse_block st in
          Sdef (fname, params, body)
      | _ -> error "expected function name")
  | KW "return" ->
      ignore (next st);
      let e = if peek st = NEWLINE then None else Some (parse_expr st) in
      expect st NEWLINE;
      Sreturn e
  | KW "pass" ->
      ignore (next st);
      expect st NEWLINE;
      Spass
  | KW "for" -> (
      ignore (next st);
      match next st with
      | NAME v ->
          (match next st with
          | KW "in" -> ()
          | _ -> error "expected in");
          let e = parse_expr st in
          expect_op st ":";
          let body = parse_block st in
          Sfor (v, e, body)
      | _ -> error "expected loop variable")
  | KW "while" ->
      ignore (next st);
      let c = parse_expr st in
      expect_op st ":";
      Swhile (c, parse_block st)
  | KW "if" ->
      ignore (next st);
      let c = parse_expr st in
      expect_op st ":";
      let then_ = parse_block st in
      let else_ =
        match peek st with
        | KW "else" ->
            ignore (next st);
            expect_op st ":";
            parse_block st
        | _ -> []
      in
      Sif (c, then_, else_)
  | _ ->
      let e = parse_expr st in
      (match peek st with
      | OP "=" ->
          ignore (next st);
          let v = parse_expr st in
          expect st NEWLINE;
          (match e with
          | Ename _ | Esub _ -> Sassign (e, v)
          | _ -> error "invalid assignment target")
      | NEWLINE ->
          ignore (next st);
          Sexpr e
      | _ -> error "expected newline")

let parse_module src : stmt list =
  let st = { toks = tokenize src } in
  let rec go acc =
    match peek st with
    | TEOF -> List.rev acc
    | NEWLINE ->
        ignore (next st);
        go acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

(* ---------- interpreter ---------- *)

type fn = { fparams : string list; fbody : stmt list }

type env = {
  funcs : (string, fn) Hashtbl.t;
  locals : (string, value) Hashtbl.t;
}

exception Return_exc of value

let truthy = function
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | Str s -> s <> ""
  | None_ -> false
  | Dict d -> Hashtbl.length d > 0
  | Func _ -> true

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Str _ -> error "expected number, got str"
  | None_ -> error "expected number, got None"
  | Dict _ -> error "expected number, got dict"
  | Func _ -> error "expected number, got function"

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b
  | None_ -> Format.fprintf ppf "None"
  | Func f -> Format.fprintf ppf "<function %s>" f
  | Dict d ->
      Format.fprintf ppf "{";
      Hashtbl.iter (fun k v -> Format.fprintf ppf "%a: %a, " pp k pp v) d;
      Format.fprintf ppf "}"

let arith op a b =
  match (op, a, b) with
  | "+", Int x, Int y -> Int (x + y)
  | "-", Int x, Int y -> Int (x - y)
  | "*", Int x, Int y -> Int (x * y)
  | "%", Int x, Int y ->
      if y = 0 then error "modulo by zero"
      else Int (((x mod y) + y) mod y)
  | "//", Int x, Int y ->
      if y = 0 then error "floor division by zero"
      else
        let q = x / y and r = x mod y in
        Int (if (r <> 0) && ((r < 0) <> (y < 0)) then q - 1 else q)
  | "**", Int x, Int y when y >= 0 ->
      let rec go acc k = if k = 0 then acc else go (acc * x) (k - 1) in
      Int (go 1 y)
  | "/", _, _ -> Float (to_float a /. to_float b)
  | "//", _, _ -> Float (Float.floor (to_float a /. to_float b))
  | "+", _, _ -> Float (to_float a +. to_float b)
  | "-", _, _ -> Float (to_float a -. to_float b)
  | "*", _, _ -> Float (to_float a *. to_float b)
  | "%", _, _ -> error "float modulo unsupported"
  | "**", _, _ -> Float (to_float a ** to_float b)
  | _ -> error "unknown operator %s" op

let compare_vals a b =
  match (a, b) with
  | Str x, Str y -> compare x y
  | _ -> compare (to_float a) (to_float b)

let rec eval env (e : expr) : value =
  match e with
  | Enum v -> v
  | Ename n -> (
      match Hashtbl.find_opt env.locals n with
      | Some v -> v
      | None ->
          if Hashtbl.mem env.funcs n then Func n
          else error "name %s is not defined" n)
  | Edict pairs ->
      let d = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace d (eval env k) (eval env v)) pairs;
      Dict d
  | Esub (d, k) -> (
      match eval env d with
      | Dict tbl -> (
          let key = eval env k in
          match Hashtbl.find_opt tbl key with
          | Some v -> v
          | None -> error "KeyError: %s" (Format.asprintf "%a" pp key))
      | _ -> error "subscript of non-dict")
  | Eattr (_, _) -> error "attribute access only valid in calls"
  | Eneg a -> (
      match eval env a with
      | Int n -> Int (-n)
      | Float f -> Float (-.f)
      | _ -> error "cannot negate non-number")
  | Enot a -> Bool (not (truthy (eval env a)))
  | Econd (a, c, b) -> if truthy (eval env c) then eval env a else eval env b
  | Ebin ("and", a, b) ->
      let va = eval env a in
      if truthy va then eval env b else va
  | Ebin ("or", a, b) ->
      let va = eval env a in
      if truthy va then va else eval env b
  | Ebin (("<" | ">" | "<=" | ">=" | "==" | "!=") as op, a, b) ->
      let c = compare_vals (eval env a) (eval env b) in
      Bool
        (match op with
        | "<" -> c < 0
        | ">" -> c > 0
        | "<=" -> c <= 0
        | ">=" -> c >= 0
        | "==" -> c = 0
        | _ -> c <> 0)
  | Ebin (op, a, b) -> arith op (eval env a) (eval env b)
  | Ecall (Eattr (d, "get"), args) -> (
      match (eval env d, args) with
      | Dict tbl, [ k ] ->
          Option.value ~default:None_ (Hashtbl.find_opt tbl (eval env k))
      | Dict tbl, [ k; dflt ] ->
          Option.value ~default:(eval env dflt)
            (Hashtbl.find_opt tbl (eval env k))
      | _ -> error "get expects a dict receiver")
  | Ecall (Ename "max", args) -> extremum env true args
  | Ecall (Ename "min", args) -> extremum env false args
  | Ecall (Ename "len", [ a ]) -> (
      match eval env a with
      | Dict d -> Int (Hashtbl.length d)
      | Str s -> Int (String.length s)
      | _ -> error "len of non-container")
  | Ecall (f, args) -> (
      let fname =
        match f with
        | Ename n -> n
        | _ -> (
            match eval env f with
            | Func n -> n
            | _ -> error "calling a non-function")
      in
      match Hashtbl.find_opt env.funcs fname with
      | None -> error "function %s is not defined" fname
      | Some fn ->
          if List.length fn.fparams <> List.length args then
            error "%s expects %d arguments" fname (List.length fn.fparams);
          let locals = Hashtbl.create 16 in
          List.iter2
            (fun p a -> Hashtbl.replace locals p (eval env a))
            fn.fparams args;
          let fenv = { env with locals } in
          exec_body fenv fn.fbody)

and extremum env is_max args =
  match List.map (eval env) args with
  | [] -> error "max/min of nothing"
  | v :: rest ->
      List.fold_left
        (fun acc v ->
          let c = compare_vals v acc in
          if (is_max && c > 0) || ((not is_max) && c < 0) then v else acc)
        v rest

and exec_body env body =
  try
    List.iter (exec env) body;
    None_
  with Return_exc v -> v

and exec env = function
  | Spass -> ()
  | Sexpr e -> ignore (eval env e)
  | Sreturn None -> raise (Return_exc None_)
  | Sreturn (Some e) -> raise (Return_exc (eval env e))
  | Sassign (Ename n, e) -> Hashtbl.replace env.locals n (eval env e)
  | Sassign (Esub (d, k), e) -> (
      match eval env d with
      | Dict tbl -> Hashtbl.replace tbl (eval env k) (eval env e)
      | _ -> error "subscript assignment to non-dict")
  | Sassign (_, _) -> error "invalid assignment target"
  | Sfor (v, e, body) -> (
      match eval env e with
      | Dict tbl ->
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
          List.iter
            (fun k ->
              Hashtbl.replace env.locals v k;
              List.iter (exec env) body)
            keys
      | _ -> error "for expects a dict")
  | Swhile (c, body) ->
      while truthy (eval env c) do
        List.iter (exec env) body
      done
  | Sif (c, then_, else_) ->
      if truthy (eval env c) then List.iter (exec env) then_
      else List.iter (exec env) else_
  | Sdef (name, params, body) ->
      Hashtbl.replace env.funcs name { fparams = params; fbody = body }

let run source =
  let stmts = parse_module source in
  let env = { funcs = Hashtbl.create 16; locals = Hashtbl.create 16 } in
  List.iter (exec env) stmts;
  fun (name, args) ->
    match Hashtbl.find_opt env.funcs name with
    | None -> error "function %s is not defined" name
    | Some fn ->
        if List.length fn.fparams <> List.length args then
          error "%s expects %d arguments" name (List.length fn.fparams);
        let locals = Hashtbl.create 16 in
        List.iter2 (fun p a -> Hashtbl.replace locals p a) fn.fparams args;
        exec_body { env with locals } fn.fbody

let dict_counts = function
  | Dict tbl ->
      Hashtbl.fold
        (fun k v acc ->
          match k with
          | Str s -> (s, to_float v) :: acc
          | _ -> error "metric dict key is not a string")
        tbl []
      |> List.sort compare
  | _ -> error "model did not return a dict"
