open Ast

(* Precedence levels matching the parser: higher binds tighter. *)
let prec_of = function
  | Lor -> 1
  | Land -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let rec expr_prec buf prec (e : expr) =
  match e.e with
  | Int_lit n ->
      if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
      else Buffer.add_string buf (string_of_int n)
  | Float_lit f ->
      let s = Printf.sprintf "%.17g" f in
      let s =
        if String.contains s '.' || String.contains s 'e'
           || String.contains s 'n' (* nan/inf *) then s
        else s ^ ".0"
      in
      if f < 0.0 then Buffer.add_string buf (Printf.sprintf "(%s)" s)
      else Buffer.add_string buf s
  | Var x -> Buffer.add_string buf x
  | Index (a, i) ->
      expr_prec buf 10 a;
      Buffer.add_char buf '[';
      expr_prec buf 0 i;
      Buffer.add_char buf ']'
  | Field (o, f) ->
      expr_prec buf 10 o;
      Buffer.add_char buf '.';
      Buffer.add_string buf f
  | Call (f, args) ->
      Buffer.add_string buf f;
      args_to_buf buf args
  | Method_call (o, m, args) ->
      expr_prec buf 10 o;
      Buffer.add_char buf '.';
      Buffer.add_string buf m;
      args_to_buf buf args
  | Binop (op, a, b) ->
      let p = prec_of op in
      if p < prec then Buffer.add_char buf '(';
      expr_prec buf p a;
      Buffer.add_string buf (Printf.sprintf " %s " (binop_to_string op));
      expr_prec buf (p + 1) b;
      if p < prec then Buffer.add_char buf ')'
  | Unop (Neg, a) ->
      if prec > 7 then Buffer.add_char buf '(';
      Buffer.add_char buf '-';
      expr_prec buf 8 a;
      if prec > 7 then Buffer.add_char buf ')'
  | Unop (Lnot, a) ->
      if prec > 7 then Buffer.add_char buf '(';
      Buffer.add_char buf '!';
      expr_prec buf 8 a;
      if prec > 7 then Buffer.add_char buf ')'
  | Cast (t, a) ->
      if prec > 7 then Buffer.add_char buf '(';
      Buffer.add_string buf (Printf.sprintf "(%s)" (ty_to_string t));
      expr_prec buf 8 a;
      if prec > 7 then Buffer.add_char buf ')'

and args_to_buf buf args =
  Buffer.add_char buf '(';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      expr_prec buf 0 a)
    args;
  Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_prec buf 0 e;
  Buffer.contents buf

let rec lvalue_to_buf buf (lv : lvalue) =
  match lv.l with
  | Lvar x -> Buffer.add_string buf x
  | Lindex (l, i) ->
      lvalue_to_buf buf l;
      Buffer.add_char buf '[';
      expr_prec buf 0 i;
      Buffer.add_char buf ']'
  | Lfield (l, f) ->
      lvalue_to_buf buf l;
      Buffer.add_char buf '.';
      Buffer.add_string buf f

let base_ty_and_suffix = function
  | Tarr t -> (ty_to_string t, "*")
  | t -> (ty_to_string t, "")

let rec stmt_to_buf buf indent (st : stmt) =
  let pad = String.make indent ' ' in
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%s#pragma @Annotation {%s}\n" pad (Annot.to_string a)))
    st.sann;
  match st.s with
  | Decl (ty, name, init) ->
      let base, star = base_ty_and_suffix ty in
      Buffer.add_string buf (Printf.sprintf "%s%s %s%s" pad base star name);
      Option.iter
        (fun e ->
          Buffer.add_string buf " = ";
          expr_prec buf 0 e)
        init;
      Buffer.add_string buf ";\n"
  | Arr_decl (ty, name, size) ->
      Buffer.add_string buf (Printf.sprintf "%s%s %s[" pad (ty_to_string ty) name);
      expr_prec buf 0 size;
      Buffer.add_string buf "];\n"
  | Assign (lv, e) ->
      Buffer.add_string buf pad;
      lvalue_to_buf buf lv;
      Buffer.add_string buf " = ";
      expr_prec buf 0 e;
      Buffer.add_string buf ";\n"
  | Op_assign (op, lv, e) ->
      Buffer.add_string buf pad;
      lvalue_to_buf buf lv;
      Buffer.add_string buf (Printf.sprintf " %s= " (binop_to_string op));
      expr_prec buf 0 e;
      Buffer.add_string buf ";\n"
  | Expr_stmt e ->
      Buffer.add_string buf pad;
      expr_prec buf 0 e;
      Buffer.add_string buf ";\n"
  | If { cond; then_; else_ } ->
      Buffer.add_string buf (pad ^ "if (");
      expr_prec buf 0 cond;
      Buffer.add_string buf ") {\n";
      List.iter (stmt_to_buf buf (indent + 2)) then_;
      Buffer.add_string buf (pad ^ "}");
      if else_ <> [] then begin
        Buffer.add_string buf " else {\n";
        List.iter (stmt_to_buf buf (indent + 2)) else_;
        Buffer.add_string buf (pad ^ "}")
      end;
      Buffer.add_char buf '\n'
  | For { init; cond; step; body } ->
      Buffer.add_string buf (pad ^ "for (");
      if init.ideclared then Buffer.add_string buf "int ";
      Buffer.add_string buf (init.ivar ^ " = ");
      expr_prec buf 0 init.iexpr;
      Buffer.add_string buf "; ";
      expr_prec buf 0 cond;
      Buffer.add_string buf "; ";
      (match (step.sdelta, step.sexpr) with
      | Some 1, None -> Buffer.add_string buf (step.svar ^ "++")
      | Some -1, None -> Buffer.add_string buf (step.svar ^ "--")
      | _, Some e ->
          Buffer.add_string buf (step.svar ^ " += ");
          expr_prec buf 0 e
      | Some d, None ->
          Buffer.add_string buf (Printf.sprintf "%s += %d" step.svar d)
      | None, None -> Buffer.add_string buf (step.svar ^ "++"));
      Buffer.add_string buf ") {\n";
      List.iter (stmt_to_buf buf (indent + 2)) body;
      Buffer.add_string buf (pad ^ "}\n")
  | While (cond, body) ->
      Buffer.add_string buf (pad ^ "while (");
      expr_prec buf 0 cond;
      Buffer.add_string buf ") {\n";
      List.iter (stmt_to_buf buf (indent + 2)) body;
      Buffer.add_string buf (pad ^ "}\n")
  | Return None -> Buffer.add_string buf (pad ^ "return;\n")
  | Return (Some e) ->
      Buffer.add_string buf (pad ^ "return ");
      expr_prec buf 0 e;
      Buffer.add_string buf ";\n"
  | Block body ->
      Buffer.add_string buf (pad ^ "{\n");
      List.iter (stmt_to_buf buf (indent + 2)) body;
      Buffer.add_string buf (pad ^ "}\n")

let stmt_to_string ?(indent = 0) st =
  let buf = Buffer.create 128 in
  stmt_to_buf buf indent st;
  Buffer.contents buf

let params_to_string params =
  String.concat ", "
    (List.map
       (fun p ->
         let base, star = base_ty_and_suffix p.pty in
         Printf.sprintf "%s %s%s" base star p.pname)
       params)

let func_to_buf buf indent (f : func) =
  let pad = String.make indent ' ' in
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s(%s) {\n" pad (ty_to_string f.fret) f.fname
       (params_to_string f.fparams));
  List.iter (stmt_to_buf buf (indent + 2)) f.fbody;
  Buffer.add_string buf (pad ^ "}\n")

let func_to_string f =
  let buf = Buffer.create 256 in
  func_to_buf buf 0 f;
  Buffer.contents buf

let program_to_string (p : program) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (x : extern_decl) ->
      Buffer.add_string buf
        (Printf.sprintf "extern %s %s(%s);\n" (ty_to_string x.xret) x.xname
           (String.concat ", "
              (List.map
                 (fun t ->
                   let base, star = base_ty_and_suffix t in
                   base ^ star)
                 x.xparams))))
    p.externs;
  List.iter
    (fun (c : class_decl) ->
      Buffer.add_string buf (Printf.sprintf "class %s {\n" c.cname);
      List.iter
        (fun f ->
          let base, star = base_ty_and_suffix f.pty in
          Buffer.add_string buf (Printf.sprintf "  %s %s%s;\n" base star f.pname))
        c.cfields;
      List.iter (func_to_buf buf 2) c.cmethods;
      Buffer.add_string buf "};\n")
    p.classes;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      func_to_buf buf 0 f)
    p.funcs;
  Buffer.contents buf

(* ---------- structural equality (spans and types ignored) ---------- *)

let rec equal_expr (a : expr) (b : expr) =
  match (a.e, b.e) with
  | Int_lit x, Int_lit y -> x = y
  | Float_lit x, Float_lit y -> x = y
  | Var x, Var y -> x = y
  | Index (a1, i1), Index (a2, i2) -> equal_expr a1 a2 && equal_expr i1 i2
  | Field (o1, f1), Field (o2, f2) -> f1 = f2 && equal_expr o1 o2
  | Call (f1, a1), Call (f2, a2) ->
      f1 = f2 && List.length a1 = List.length a2
      && List.for_all2 equal_expr a1 a2
  | Method_call (o1, m1, a1), Method_call (o2, m2, a2) ->
      m1 = m2 && equal_expr o1 o2
      && List.length a1 = List.length a2
      && List.for_all2 equal_expr a1 a2
  | Binop (op1, x1, y1), Binop (op2, x2, y2) ->
      op1 = op2 && equal_expr x1 x2 && equal_expr y1 y2
  | Unop (op1, x1), Unop (op2, x2) -> op1 = op2 && equal_expr x1 x2
  | Cast (t1, x1), Cast (t2, x2) -> t1 = t2 && equal_expr x1 x2
  | _ -> false

let rec equal_lvalue (a : lvalue) (b : lvalue) =
  match (a.l, b.l) with
  | Lvar x, Lvar y -> x = y
  | Lindex (l1, i1), Lindex (l2, i2) -> equal_lvalue l1 l2 && equal_expr i1 i2
  | Lfield (l1, f1), Lfield (l2, f2) -> f1 = f2 && equal_lvalue l1 l2
  | _ -> false

let equal_opt eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

let rec equal_stmt (a : stmt) (b : stmt) =
  a.sann = b.sann
  &&
  match (a.s, b.s) with
  | Decl (t1, n1, i1), Decl (t2, n2, i2) ->
      t1 = t2 && n1 = n2 && equal_opt equal_expr i1 i2
  | Arr_decl (t1, n1, s1), Arr_decl (t2, n2, s2) ->
      t1 = t2 && n1 = n2 && equal_expr s1 s2
  | Assign (l1, e1), Assign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | Op_assign (o1, l1, e1), Op_assign (o2, l2, e2) ->
      o1 = o2 && equal_lvalue l1 l2 && equal_expr e1 e2
  | Expr_stmt e1, Expr_stmt e2 -> equal_expr e1 e2
  | If i1, If i2 ->
      equal_expr i1.cond i2.cond
      && equal_stmts i1.then_ i2.then_
      && equal_stmts i1.else_ i2.else_
  | For f1, For f2 ->
      f1.init.ivar = f2.init.ivar
      && f1.init.ideclared = f2.init.ideclared
      && equal_expr f1.init.iexpr f2.init.iexpr
      && equal_expr f1.cond f2.cond
      && f1.step.svar = f2.step.svar
      && f1.step.sdelta = f2.step.sdelta
      && equal_opt equal_expr f1.step.sexpr f2.step.sexpr
      && equal_stmts f1.body f2.body
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_stmts b1 b2
  | Return e1, Return e2 -> equal_opt equal_expr e1 e2
  | Block b1, Block b2 -> equal_stmts b1 b2
  | _ -> false

and equal_stmts a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_func (a : func) (b : func) =
  a.fname = b.fname && a.fret = b.fret && a.fclass = b.fclass
  && a.fparams = b.fparams
  && equal_stmts a.fbody b.fbody

let equal_program (a : program) (b : program) =
  a.externs = b.externs
  && List.length a.classes = List.length b.classes
  && List.for_all2
       (fun (c1 : class_decl) (c2 : class_decl) ->
         c1.cname = c2.cname && c1.cfields = c2.cfields
         && List.length c1.cmethods = List.length c2.cmethods
         && List.for_all2 equal_func c1.cmethods c2.cmethods)
       a.classes b.classes
  && List.length a.funcs = List.length b.funcs
  && List.for_all2 equal_func a.funcs b.funcs
