(** Parsing of [#pragma @Annotation {...}] payloads (paper §III-C4).

    Recognized keys:
    - [{skip:yes}] — exclude the next structure from the model;
    - [{lp_init:v}] / [{lp_cond:v}] — variables (or integer literals)
      completing a loop SCoP the static analysis cannot see;
    - [{iters:e}] — iteration-count expression for a loop whose SCoP
      is not affine (e.g. CSR row loops); [e] is an identifier, an
      integer, or a product like [27*nrows];
    - [{fraction:f}] — estimated proportion of iterations on which a
      branch is taken;
    - [{parallel:yes}] — the loop is a shared-memory parallel region
      (an extension implementing the paper's future work: its body's
      costs scale across the architecture's cores in predictions). *)

exception Error of string

val parse : string -> Ast.annotation_item list
(** @raise Error on malformed payloads or unknown keys. *)

val to_string : Ast.annotation_item -> string
