(* Abstract syntax of mini-C, the language Mira analyzes.

   Every node carries a span; typed expressions additionally carry the
   type inferred by {!Typecheck} in a mutable slot so downstream
   passes (codegen, the metric generator) can dispatch on int vs
   double without a second tree. *)

type ty =
  | Tint
  | Tdouble
  | Tvoid
  | Tarr of ty  (* one-dimensional array of element type *)
  | Tclass of string

let rec pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tdouble -> Format.pp_print_string ppf "double"
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tarr t -> Format.fprintf ppf "%a[]" pp_ty t
  | Tclass c -> Format.pp_print_string ppf c

let ty_to_string t = Format.asprintf "%a" pp_ty t

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Lnot

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

type expr = {
  e : expr_desc;
  espan : Loc.span;
  mutable ety : ty option;  (* filled by Typecheck *)
}

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of expr * expr
  | Field of expr * string
  | Call of string * expr list
  | Method_call of expr * string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of ty * expr

type lvalue = { l : lvalue_desc; lspan : Loc.span }

and lvalue_desc =
  | Lvar of string
  | Lindex of lvalue * expr
  | Lfield of lvalue * string

(* User annotations (paper §III-C4), attached to the following
   statement by `#pragma @Annotation { ... }`. *)
type annotation_item =
  | A_skip                     (* {skip:yes} *)
  | A_init of string           (* {lp_init:x} — variable completing a SCoP *)
  | A_cond of string           (* {lp_cond:y} *)
  | A_iters of string          (* {iters:n} — iteration count expression *)
  | A_fraction of float        (* {fraction:0.25} — branch proportion *)
  | A_parallel                 (* {parallel:yes} — shared-memory loop
                                  (the paper's future-work extension) *)

type stmt = {
  s : stmt_desc;
  sspan : Loc.span;
  sann : annotation_item list;
}

and stmt_desc =
  | Decl of ty * string * expr option
  | Arr_decl of ty * string * expr  (* element type, name, length *)
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr  (* x += e etc. *)
  | Expr_stmt of expr
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | For of {
      init : for_init;
      cond : expr;
      step : for_step;
      body : stmt list;
    }
  | While of expr * stmt list
  | Return of expr option
  | Block of stmt list

and for_init = {
  ivar : string;
  ideclared : bool;  (* `for (int i = ...` vs `for (i = ...` *)
  iexpr : expr;
  ispan : Loc.span;
}

and for_step = {
  svar : string;
  sdelta : int option;  (* Some d for i += d / i++ / i-- (d = -1); None if irregular *)
  sexpr : expr option;  (* the delta expression when not a literal *)
  stspan : Loc.span;
}

type param = { pty : ty; pname : string }

type func = {
  fname : string;
  fret : ty;
  fparams : param list;
  fbody : stmt list;
  fclass : string option;  (* enclosing class for methods *)
  fspan : Loc.span;
}

type class_decl = {
  cname : string;
  cfields : param list;
  cmethods : func list;
  cspan : Loc.span;
}

type extern_decl = {
  xname : string;
  xret : ty;
  xparams : ty list;
}

type program = {
  classes : class_decl list;
  funcs : func list;
  externs : extern_decl list;
}

let mk_expr ?(ety = None) e espan = { e; espan; ety }
let mk_stmt ?(ann = []) s sspan = { s; sspan; sann = ann }

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

let find_method p cls name =
  match List.find_opt (fun c -> c.cname = cls) p.classes with
  | None -> None
  | Some c -> List.find_opt (fun m -> m.fname = name) c.cmethods

let find_extern p name = List.find_opt (fun x -> x.xname = name) p.externs

let all_functions p =
  p.funcs @ List.concat_map (fun c -> c.cmethods) p.classes

(* Iterate over every statement in a function body, depth first. *)
let rec iter_stmts f stmts =
  List.iter
    (fun st ->
      f st;
      match st.s with
      | If { then_; else_; _ } ->
          iter_stmts f then_;
          iter_stmts f else_
      | For { body; _ } | While (_, body) | Block body -> iter_stmts f body
      | Decl _ | Arr_decl _ | Assign _ | Op_assign _ | Expr_stmt _ | Return _
        -> ())
    stmts

let rec iter_exprs_of_expr f e =
  f e;
  match e.e with
  | Int_lit _ | Float_lit _ | Var _ -> ()
  | Index (a, b) | Binop (_, a, b) ->
      iter_exprs_of_expr f a;
      iter_exprs_of_expr f b
  | Field (a, _) | Unop (_, a) | Cast (_, a) -> iter_exprs_of_expr f a
  | Call (_, args) -> List.iter (iter_exprs_of_expr f) args
  | Method_call (o, _, args) ->
      iter_exprs_of_expr f o;
      List.iter (iter_exprs_of_expr f) args

let rec iter_exprs_of_lvalue f lv =
  match lv.l with
  | Lvar _ -> ()
  | Lindex (l, e) ->
      iter_exprs_of_lvalue f l;
      iter_exprs_of_expr f e
  | Lfield (l, _) -> iter_exprs_of_lvalue f l

let iter_exprs_of_stmt f st =
  match st.s with
  | Decl (_, _, Some e) -> iter_exprs_of_expr f e
  | Decl (_, _, None) -> ()
  | Arr_decl (_, _, e) -> iter_exprs_of_expr f e
  | Assign (lv, e) | Op_assign (_, lv, e) ->
      iter_exprs_of_lvalue f lv;
      iter_exprs_of_expr f e
  | Expr_stmt e -> iter_exprs_of_expr f e
  | If { cond; _ } -> iter_exprs_of_expr f cond
  | For { init; cond; step; _ } ->
      iter_exprs_of_expr f init.iexpr;
      iter_exprs_of_expr f cond;
      Option.iter (iter_exprs_of_expr f) step.sexpr
  | While (c, _) -> iter_exprs_of_expr f c
  | Return (Some e) -> iter_exprs_of_expr f e
  | Return None | Block _ -> ()
