(** Mini-C pretty-printer.

    Renders an AST back to compilable source.  Positions are not
    preserved (the printer lays out its own lines), but structure is:
    [parse (print ast)] is structurally equal to [ast] up to spans —
    a property the test suite checks on random programs. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string

val equal_program : Ast.program -> Ast.program -> bool
(** Structural equality ignoring spans and inferred types. *)
