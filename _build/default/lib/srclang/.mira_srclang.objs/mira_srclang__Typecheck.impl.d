lib/srclang/typecheck.ml: Ast Format Hashtbl List Loc Option String
