lib/srclang/loc.mli: Format
