lib/srclang/annot.ml: Ast List Printf String
