lib/srclang/loc.ml: Format
