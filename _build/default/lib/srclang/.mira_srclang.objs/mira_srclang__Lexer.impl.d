lib/srclang/lexer.ml: Buffer List Loc Option Printf String
