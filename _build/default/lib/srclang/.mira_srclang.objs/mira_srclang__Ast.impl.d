lib/srclang/ast.ml: Format List Loc Option
