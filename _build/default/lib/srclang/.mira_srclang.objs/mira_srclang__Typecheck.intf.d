lib/srclang/typecheck.mli: Ast Format Loc
