lib/srclang/parser.mli: Ast Loc
