lib/srclang/dot.mli: Ast
