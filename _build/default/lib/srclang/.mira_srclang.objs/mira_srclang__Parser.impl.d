lib/srclang/parser.ml: Annot Ast Lexer List Loc Printf
