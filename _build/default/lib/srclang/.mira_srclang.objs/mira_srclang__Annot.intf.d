lib/srclang/annot.mli: Ast
