lib/srclang/dot.ml: Ast Buffer List Option Printf String
