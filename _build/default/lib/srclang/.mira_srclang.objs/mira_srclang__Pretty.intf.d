lib/srclang/pretty.mli: Ast
