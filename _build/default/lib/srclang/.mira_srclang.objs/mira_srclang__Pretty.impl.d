lib/srclang/pretty.ml: Annot Ast Buffer List Option Printf String
