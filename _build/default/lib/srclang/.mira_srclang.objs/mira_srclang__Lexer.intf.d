lib/srclang/lexer.mli: Loc
