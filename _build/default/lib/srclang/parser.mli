(** Recursive-descent parser for mini-C producing the positioned AST.

    The accepted language is the C subset Mira's analyses consume:
    functions, classes with fields and member functions, [int] /
    [double] scalars and one-dimensional arrays, [for] / [while] /
    [if], compound assignment, calls and method calls, [extern]
    declarations, and [#pragma @Annotation] attached to the following
    statement. *)

exception Error of string * Loc.pos

val parse : string -> Ast.program
(** @raise Error with a message and position on syntax errors.
    @raise Lexer.Error on lexical errors.
    @raise Annot.Error on malformed annotations. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by annotation values and
    tests). *)
