(** Source positions and spans.

    Line and column information is the bridge between the source AST
    and the binary AST (paper §III-A2): the compiler stamps every
    emitted instruction with the position of the expression it came
    from, mirroring DWARF [.debug_line]. *)

type pos = { line : int; col : int }
type span = { lo : pos; hi : pos }

val pos : int -> int -> pos
val dummy : span
val span : pos -> pos -> span
val join : span -> span -> span

val contains : span -> pos -> bool
(** Inclusive on both ends. *)

val compare_pos : pos -> pos -> int
val pp_pos : Format.formatter -> pos -> unit
val pp : Format.formatter -> span -> unit
