(** Hand-written lexer for mini-C. *)

type token_desc =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string  (** int double void for while if else return class extern *)
  | PUNCT of string
      (** one of: + - * / % < <= > >= == != && || ! = += -= *= /= ++ --
          ( ) [ ] { } ; , . *)
  | PRAGMA of string  (** payload after [#pragma @Annotation] *)
  | EOF

type token = { t : token_desc; tspan : Loc.span }

exception Error of string * Loc.pos

val tokenize : string -> token list
(** @raise Error on malformed input. *)

val token_to_string : token_desc -> string
