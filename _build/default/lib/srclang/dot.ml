open Ast

type ctx = { buf : Buffer.t; mutable next : int }

let fresh ctx =
  let id = ctx.next in
  ctx.next <- id + 1;
  id

let node ctx label =
  let id = fresh ctx in
  Buffer.add_string ctx.buf
    (Printf.sprintf "  n%d [label=\"%s\"];\n" id (String.escaped label));
  id

let edge ctx a b = Buffer.add_string ctx.buf (Printf.sprintf "  n%d -> n%d;\n" a b)

let rec expr_node ctx (e : expr) =
  match e.e with
  | Int_lit n -> node ctx (Printf.sprintf "SgIntVal %d" n)
  | Float_lit f -> node ctx (Printf.sprintf "SgDoubleVal %g" f)
  | Var x -> node ctx (Printf.sprintf "SgVarRefExp %s" x)
  | Index (a, i) ->
      let id = node ctx "SgPntrArrRefExp" in
      edge ctx id (expr_node ctx a);
      edge ctx id (expr_node ctx i);
      id
  | Field (o, f) ->
      let id = node ctx (Printf.sprintf "SgDotExp .%s" f) in
      edge ctx id (expr_node ctx o);
      id
  | Call (f, args) ->
      let id = node ctx (Printf.sprintf "SgFunctionCallExp %s" f) in
      List.iter (fun a -> edge ctx id (expr_node ctx a)) args;
      id
  | Method_call (o, m, args) ->
      let id = node ctx (Printf.sprintf "SgMemberFunctionCallExp %s" m) in
      edge ctx id (expr_node ctx o);
      List.iter (fun a -> edge ctx id (expr_node ctx a)) args;
      id
  | Binop (op, a, b) ->
      let name =
        match op with
        | Add -> "SgAddOp" | Sub -> "SgSubtractOp" | Mul -> "SgMultiplyOp"
        | Div -> "SgDivideOp" | Mod -> "SgModOp"
        | Lt -> "SgLessThanOp" | Le -> "SgLessOrEqualOp"
        | Gt -> "SgGreaterThanOp" | Ge -> "SgGreaterOrEqualOp"
        | Eq -> "SgEqualityOp" | Ne -> "SgNotEqualOp"
        | Land -> "SgAndOp" | Lor -> "SgOrOp"
      in
      let id = node ctx name in
      edge ctx id (expr_node ctx a);
      edge ctx id (expr_node ctx b);
      id
  | Unop (Neg, a) ->
      let id = node ctx "SgMinusOp" in
      edge ctx id (expr_node ctx a);
      id
  | Unop (Lnot, a) ->
      let id = node ctx "SgNotOp" in
      edge ctx id (expr_node ctx a);
      id
  | Cast (t, a) ->
      let id = node ctx (Printf.sprintf "SgCastExp %s" (ty_to_string t)) in
      edge ctx id (expr_node ctx a);
      id

let rec lvalue_node ctx (lv : lvalue) =
  match lv.l with
  | Lvar x -> node ctx (Printf.sprintf "SgVarRefExp %s" x)
  | Lindex (l, i) ->
      let id = node ctx "SgPntrArrRefExp" in
      edge ctx id (lvalue_node ctx l);
      edge ctx id (expr_node ctx i);
      id
  | Lfield (l, f) ->
      let id = node ctx (Printf.sprintf "SgDotExp .%s" f) in
      edge ctx id (lvalue_node ctx l);
      id

let rec stmt_node ctx (st : stmt) =
  match st.s with
  | Decl (ty, name, init) ->
      let id =
        node ctx
          (Printf.sprintf "SgVariableDeclaration %s %s" (ty_to_string ty) name)
      in
      Option.iter (fun e -> edge ctx id (expr_node ctx e)) init;
      id
  | Arr_decl (ty, name, size) ->
      let id =
        node ctx
          (Printf.sprintf "SgVariableDeclaration %s %s[]" (ty_to_string ty)
             name)
      in
      edge ctx id (expr_node ctx size);
      id
  | Assign (lv, e) ->
      let id = node ctx "SgExprStatement" in
      let assign = node ctx "SgAssignOp" in
      edge ctx id assign;
      edge ctx assign (lvalue_node ctx lv);
      edge ctx assign (expr_node ctx e);
      id
  | Op_assign (op, lv, e) ->
      let name =
        match op with
        | Add -> "SgPlusAssignOp" | Sub -> "SgMinusAssignOp"
        | Mul -> "SgMultAssignOp" | Div -> "SgDivAssignOp"
        | _ -> "SgCompoundAssignOp"
      in
      let id = node ctx "SgExprStatement" in
      let assign = node ctx name in
      edge ctx id assign;
      edge ctx assign (lvalue_node ctx lv);
      edge ctx assign (expr_node ctx e);
      id
  | Expr_stmt e ->
      let id = node ctx "SgExprStatement" in
      edge ctx id (expr_node ctx e);
      id
  | If { cond; then_; else_ } ->
      let id = node ctx "SgIfStmt" in
      let c = node ctx "SgExprStatement" in
      edge ctx id c;
      edge ctx c (expr_node ctx cond);
      edge ctx id (block_node ctx then_);
      if else_ <> [] then edge ctx id (block_node ctx else_);
      id
  | For { init; cond; step; body } ->
      let id = node ctx "SgForStatement" in
      let i = node ctx "SgForInitStatement" in
      edge ctx id i;
      edge ctx i (expr_node ctx init.iexpr);
      let c = node ctx "SgExprStatement" in
      edge ctx id c;
      edge ctx c (expr_node ctx cond);
      let s =
        node ctx
          (match step.sdelta with
          | Some 1 -> "SgPlusPlusOp"
          | Some -1 -> "SgMinusMinusOp"
          | _ -> "SgPlusAssignOp")
      in
      edge ctx id s;
      Option.iter (fun e -> edge ctx s (expr_node ctx e)) step.sexpr;
      edge ctx id (block_node ctx body);
      id
  | While (cond, body) ->
      let id = node ctx "SgWhileStmt" in
      edge ctx id (expr_node ctx cond);
      edge ctx id (block_node ctx body);
      id
  | Return e ->
      let id = node ctx "SgReturnStmt" in
      Option.iter (fun e -> edge ctx id (expr_node ctx e)) e;
      id
  | Block body -> block_node ctx body

and block_node ctx stmts =
  let id = node ctx "SgBasicBlock" in
  List.iter (fun st -> edge ctx id (stmt_node ctx st)) stmts;
  id

let func_node ctx (f : func) =
  let qualified =
    match f.fclass with None -> f.fname | Some c -> c ^ "::" ^ f.fname
  in
  let id = node ctx (Printf.sprintf "SgFunctionDeclaration %s" qualified) in
  let def = node ctx "SgFunctionDefinition" in
  edge ctx id def;
  edge ctx def (block_node ctx f.fbody);
  id

let render f =
  let ctx = { buf = Buffer.create 1024; next = 0 } in
  Buffer.add_string ctx.buf "digraph srcast {\n  node [shape=box];\n";
  f ctx;
  Buffer.add_string ctx.buf "}\n";
  Buffer.contents ctx.buf

let of_func f = render (fun ctx -> ignore (func_node ctx f))

let of_program p =
  render (fun ctx ->
      let root = node ctx "SgProject" in
      let file = node ctx "SgSourceFile" in
      edge ctx root file;
      let global = node ctx "SgGlobal" in
      edge ctx file global;
      List.iter
        (fun (c : class_decl) ->
          let cid = node ctx (Printf.sprintf "SgClassDeclaration %s" c.cname) in
          edge ctx global cid;
          List.iter (fun m -> edge ctx cid (func_node ctx m)) c.cmethods)
        p.classes;
      List.iter (fun f -> edge ctx global (func_node ctx f)) p.funcs)
