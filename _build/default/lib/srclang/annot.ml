exception Error of string

let strip = String.trim

let parse payload =
  let payload = strip payload in
  let n = String.length payload in
  if n < 2 || payload.[0] <> '{' || payload.[n - 1] <> '}' then
    raise (Error (Printf.sprintf "annotation payload must be {k:v,...}: %S" payload));
  let body = String.sub payload 1 (n - 2) in
  if strip body = "" then []
  else
    String.split_on_char ',' body
    |> List.map (fun item ->
           match String.index_opt item ':' with
           | None -> raise (Error (Printf.sprintf "missing ':' in %S" item))
           | Some i ->
               let k = strip (String.sub item 0 i) in
               let v = strip (String.sub item (i + 1) (String.length item - i - 1)) in
               if v = "" then raise (Error (Printf.sprintf "empty value for %S" k));
               (match k with
               | "skip" ->
                   if v = "yes" || v = "true" then Ast.A_skip
                   else raise (Error (Printf.sprintf "skip expects yes, got %S" v))
               | "parallel" ->
                   if v = "yes" || v = "true" then Ast.A_parallel
                   else
                     raise
                       (Error (Printf.sprintf "parallel expects yes, got %S" v))
               | "lp_init" -> Ast.A_init v
               | "lp_cond" -> Ast.A_cond v
               | "iters" -> Ast.A_iters v
               | "fraction" -> (
                   match float_of_string_opt v with
                   | Some f when f >= 0.0 && f <= 1.0 -> Ast.A_fraction f
                   | _ ->
                       raise
                         (Error
                            (Printf.sprintf
                               "fraction expects a number in [0,1], got %S" v)))
               | _ -> raise (Error (Printf.sprintf "unknown annotation key %S" k))))

let to_string = function
  | Ast.A_skip -> "skip:yes"
  | Ast.A_init v -> "lp_init:" ^ v
  | Ast.A_cond v -> "lp_cond:" ^ v
  | Ast.A_iters v -> "iters:" ^ v
  | Ast.A_fraction f -> Printf.sprintf "fraction:%g" f
  | Ast.A_parallel -> "parallel:yes"
