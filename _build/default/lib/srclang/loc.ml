type pos = { line : int; col : int }
type span = { lo : pos; hi : pos }

let pos line col = { line; col }
let dummy = { lo = { line = 0; col = 0 }; hi = { line = 0; col = 0 } }
let span lo hi = { lo; hi }

let compare_pos a b =
  if a.line <> b.line then compare a.line b.line else compare a.col b.col

let join a b =
  {
    lo = (if compare_pos a.lo b.lo <= 0 then a.lo else b.lo);
    hi = (if compare_pos a.hi b.hi >= 0 then a.hi else b.hi);
  }

let contains s p = compare_pos s.lo p <= 0 && compare_pos p s.hi <= 0
let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col
let pp ppf s = Format.fprintf ppf "%a-%a" pp_pos s.lo pp_pos s.hi
