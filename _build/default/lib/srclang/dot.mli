(** Graphviz export of the source AST, in the style of the
    ROSE-generated dot graphs shown in the paper's Figure 2 (node
    labels reuse ROSE's [Sg*] class names for familiarity). *)

val of_program : Ast.program -> string
val of_func : Ast.func -> string
