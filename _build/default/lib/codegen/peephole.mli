(** Peephole cleanup on emitted code: removes no-op moves
    ([movq r, r], [movsd x, x]) and [nop]s, remapping jump targets.
    Applied at [-O1]. *)

val fundef : Mira_visa.Program.fundef -> Mira_visa.Program.fundef
val program : Mira_visa.Program.t -> Mira_visa.Program.t
