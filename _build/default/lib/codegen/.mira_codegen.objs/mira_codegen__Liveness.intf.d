lib/codegen/liveness.mli: Mira_visa
