lib/codegen/fold.ml: List Mira_srclang Option
