lib/codegen/codegen.mli: Mira_srclang Mira_visa
