lib/codegen/codegen.ml: Emit Fold Liveness Mira_srclang Mira_visa Peephole Vectorize
