lib/codegen/emit.mli: Mira_srclang Mira_visa
