lib/codegen/vectorize.ml: Array Hashtbl Isa List Mira_visa Program
