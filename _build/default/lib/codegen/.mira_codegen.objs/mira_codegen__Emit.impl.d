lib/codegen/emit.ml: Array Format Hashtbl Isa List Loc Mira_srclang Mira_visa Option Program
