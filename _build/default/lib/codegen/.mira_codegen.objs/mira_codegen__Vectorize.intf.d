lib/codegen/vectorize.mli: Mira_visa
