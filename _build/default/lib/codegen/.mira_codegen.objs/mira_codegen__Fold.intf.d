lib/codegen/fold.mli: Mira_srclang
