lib/codegen/liveness.ml: Array Hashtbl Int List Mira_visa Option Program Set
