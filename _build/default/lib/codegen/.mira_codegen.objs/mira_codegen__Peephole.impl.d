lib/codegen/peephole.ml: Array List Mira_visa Program
