lib/codegen/peephole.mli: Mira_visa
