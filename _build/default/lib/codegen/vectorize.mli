(** 2-wide vectorization of eligible innermost loops, applied to the
    emitted code at [-O2].

    A loop is eligible when it has the [i < bound] shape, its body is
    straight-line SSE2 scalar code whose memory accesses are stride-1
    in the loop variable, its only integer work is the counter
    increment, and it carries no floating-point value across
    iterations (reductions stay scalar).  The transformation doubles
    the step, rewrites scalar ops to their packed forms, broadcasts
    live-in scalars in the preheader, and appends a scalar remainder
    epilogue — so it is semantics-preserving for any trip count.

    The binary's main loop runs half the source trip count while the
    source still reads as N iterations, and the epilogue duplicates
    the body on the same source lines — exactly the source/binary
    bridging hazard the ablation benchmark studies (and that
    {!Mira_core.Model_eval.fpi_vectorization_aware} corrects). *)

val program : Mira_visa.Program.t -> Mira_visa.Program.t

val vectorized_lines : Mira_visa.Program.t -> (string * int list) list
(** For each function, source lines whose instructions were packed —
    what Mira's packed-aware correction consumes. *)
