type level = O0 | O1 | O2

exception Error = Emit.Error

let compile_ast ?(level = O1) (ast : Mira_srclang.Ast.program) =
  let ast = match level with O0 -> ast | O1 | O2 -> Fold.program ast in
  let ast = Mira_srclang.Typecheck.check_exn ast in
  let prog = Emit.program ~addressing_fold:(level <> O0) ast in
  let prog =
    match level with
    | O0 -> prog
    | O1 | O2 -> Peephole.program (Liveness.program prog)
  in
  match level with O2 -> Vectorize.program prog | O0 | O1 -> prog

let compile ?level src = compile_ast ?level (Mira_srclang.Parser.parse src)

let compile_to_object ?level src = Mira_visa.Objfile.encode (compile ?level src)
