open Mira_visa
open Mira_visa.Isa

let removable = function
  | Movq (d, Reg s) when d = s -> true
  | Movsd_rr (d, s) when d = s -> true
  | Nop -> true
  | _ -> false

let fundef (f : Program.fundef) : Program.fundef =
  let n = Array.length f.insns in
  let keep = Array.make n true in
  Array.iteri (fun i insn -> if removable insn then keep.(i) <- false) f.insns;
  (* jump targets must survive: a removed instruction that is a target
     retargets to the next kept one; compute new index mapping *)
  let new_index = Array.make (n + 1) 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    new_index.(i) <- !count;
    if keep.(i) then incr count
  done;
  new_index.(n) <- !count;
  let insns = Array.make !count Nop in
  let debug = Array.make (max 1 !count) { Program.line = 0; col = 0 } in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      let insn =
        match f.insns.(i) with
        | Jmp t -> Jmp new_index.(t)
        | Jcc (c, t) -> Jcc (c, new_index.(t))
        | insn -> insn
      in
      insns.(!j) <- insn;
      debug.(!j) <- f.debug.(i);
      incr j
    end
  done;
  { f with insns; debug = Array.sub debug 0 !count }

let program (p : Program.t) : Program.t =
  { p with funs = List.map fundef p.funs }
