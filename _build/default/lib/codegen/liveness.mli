(** Register liveness + local copy propagation + dead-move elimination.

    The lowering emits SSA-ish code with many protective
    register-to-register copies.  This pass (part of [-O1]) propagates
    copies within basic blocks and removes pure instructions whose
    results are never read, using a global backward liveness analysis
    over the function's CFG.

    ABI registers (indices below {!Mira_visa.Isa.abi_regs}) are
    treated as permanently live and are never rewritten — calls and
    returns communicate through them.  Stores, calls, jumps, flag
    tests and allocations are never removed. *)

val fundef : Mira_visa.Program.fundef -> Mira_visa.Program.fundef
val program : Mira_visa.Program.t -> Mira_visa.Program.t
