(** Lowering from the (typechecked) mini-C AST to the virtual ISA.

    Every emitted instruction is stamped with the source position of
    the construct it implements; loop init / condition / step get the
    positions of those sub-expressions specifically, so the
    [.debug_line] section lets Mira attribute loop-control overhead
    with the right multiplicities (init once, condition n+1, step n). *)

exception Error of string * Mira_srclang.Loc.pos

val program :
  ?addressing_fold:bool -> Mira_srclang.Ast.program -> Mira_visa.Program.t
(** [addressing_fold] (default true) folds constant offsets and index
    registers into memory operands instead of materializing address
    arithmetic; disabled at [-O0].

    The input program must have passed {!Mira_srclang.Typecheck}.
    @raise Error on constructs the backend does not support. *)

val mangle : Mira_srclang.Ast.func -> string
(** The symbol name of a function: [name], or [Class::name] for
    methods. *)
