open Mira_srclang.Ast

let mk desc (template : expr) = { template with e = desc }

let rec expr (e : expr) : expr =
  match e.e with
  | Int_lit _ | Float_lit _ | Var _ -> e
  | Index (a, i) -> mk (Index (expr a, expr i)) e
  | Field (o, f) -> mk (Field (expr o, f)) e
  | Call (f, args) -> mk (Call (f, List.map expr args)) e
  | Method_call (o, m, args) ->
      mk (Method_call (expr o, m, List.map expr args)) e
  | Unop (op, a) -> (
      let a = expr a in
      match (op, a.e) with
      | Neg, Int_lit n -> mk (Int_lit (-n)) e
      | Neg, Float_lit f -> mk (Float_lit (-.f)) e
      | Lnot, Int_lit n -> mk (Int_lit (if n = 0 then 1 else 0)) e
      | _ -> mk (Unop (op, a)) e)
  | Cast (t, a) -> (
      let a = expr a in
      match (t, a.e) with
      | Tdouble, Int_lit n -> mk (Float_lit (float_of_int n)) e
      | Tint, Float_lit f -> mk (Int_lit (int_of_float f)) e
      | _ -> mk (Cast (t, a)) e)
  | Binop (op, a, b) -> (
      let a = expr a and b = expr b in
      let int_result n = mk (Int_lit n) e in
      let float_result f = mk (Float_lit f) e in
      let bool_result c = int_result (if c then 1 else 0) in
      match (op, a.e, b.e) with
      (* integer folding *)
      | Add, Int_lit x, Int_lit y -> int_result (x + y)
      | Sub, Int_lit x, Int_lit y -> int_result (x - y)
      | Mul, Int_lit x, Int_lit y -> int_result (x * y)
      | Div, Int_lit x, Int_lit y when y <> 0 -> int_result (x / y)
      | Mod, Int_lit x, Int_lit y when y <> 0 -> int_result (x mod y)
      | Lt, Int_lit x, Int_lit y -> bool_result (x < y)
      | Le, Int_lit x, Int_lit y -> bool_result (x <= y)
      | Gt, Int_lit x, Int_lit y -> bool_result (x > y)
      | Ge, Int_lit x, Int_lit y -> bool_result (x >= y)
      | Eq, Int_lit x, Int_lit y -> bool_result (x = y)
      | Ne, Int_lit x, Int_lit y -> bool_result (x <> y)
      | Land, Int_lit x, Int_lit y -> bool_result (x <> 0 && y <> 0)
      | Lor, Int_lit x, Int_lit y -> bool_result (x <> 0 || y <> 0)
      (* float folding *)
      | Add, Float_lit x, Float_lit y -> float_result (x +. y)
      | Sub, Float_lit x, Float_lit y -> float_result (x -. y)
      | Mul, Float_lit x, Float_lit y -> float_result (x *. y)
      | Div, Float_lit x, Float_lit y when y <> 0.0 -> float_result (x /. y)
      (* identities; sound for ints, and for the float ones we keep
         only those valid under IEEE (x*1, x/1; not x+0 which alters
         signed zeros in principle — our corpus does not care, but the
         conservative set is free) *)
      | Add, _, Int_lit 0 -> a
      | Add, Int_lit 0, _ -> b
      | Sub, _, Int_lit 0 -> a
      | Mul, _, Int_lit 1 -> a
      | Mul, Int_lit 1, _ -> b
      | Mul, _, Float_lit 1.0 -> a
      | Mul, Float_lit 1.0, _ -> b
      | Div, _, Int_lit 1 -> a
      | Div, _, Float_lit 1.0 -> a
      | Mul, _, Int_lit 0 -> int_result 0
      | Mul, Int_lit 0, _ -> int_result 0
      | _ -> mk (Binop (op, a, b)) e)

let rec stmt (st : stmt) : stmt =
  let s =
    match st.s with
    | Decl (t, n, init) -> Decl (t, n, Option.map expr init)
    | Arr_decl (t, n, size) -> Arr_decl (t, n, expr size)
    | Assign (lv, e) -> Assign (lvalue lv, expr e)
    | Op_assign (op, lv, e) -> Op_assign (op, lvalue lv, expr e)
    | Expr_stmt e -> Expr_stmt (expr e)
    | If { cond; then_; else_ } ->
        If { cond = expr cond; then_ = List.map stmt then_;
             else_ = List.map stmt else_ }
    | For { init; cond; step; body } ->
        For
          {
            init = { init with iexpr = expr init.iexpr };
            cond = expr cond;
            step = { step with sexpr = Option.map expr step.sexpr };
            body = List.map stmt body;
          }
    | While (c, body) -> While (expr c, List.map stmt body)
    | Return e -> Return (Option.map expr e)
    | Block body -> Block (List.map stmt body)
  in
  { st with s }

and lvalue (lv : lvalue) : lvalue =
  match lv.l with
  | Lvar _ -> lv
  | Lindex (l, e) -> { lv with l = Lindex (lvalue l, expr e) }
  | Lfield (l, f) -> { lv with l = Lfield (lvalue l, f) }

let func (f : func) = { f with fbody = List.map stmt f.fbody }

let program (p : program) =
  {
    p with
    funcs = List.map func p.funcs;
    classes =
      List.map
        (fun c -> { c with cmethods = List.map func c.cmethods })
        p.classes;
  }
