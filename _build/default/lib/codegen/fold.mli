(** AST-level constant folding and algebraic simplification.

    Runs before lowering at [-O1] and is one of the compiler effects
    that make binary instruction counts differ from source operation
    counts (the PBound-vs-Mira contrast in the paper's related-work
    discussion): [2.0 * 3.0] costs no runtime multiply, [x * 1] is a
    move, [x * 8] becomes a shift during lowering. *)

val expr : Mira_srclang.Ast.expr -> Mira_srclang.Ast.expr
val stmt : Mira_srclang.Ast.stmt -> Mira_srclang.Ast.stmt
val func : Mira_srclang.Ast.func -> Mira_srclang.Ast.func
val program : Mira_srclang.Ast.program -> Mira_srclang.Ast.program
