open Mira_visa
open Mira_visa.Isa

(* Registers of both files share one encoding: int reg r -> 2r,
   xmm reg r -> 2r+1. *)
let ir r = 2 * r
let xr r = (2 * r) + 1
let is_local enc = enc / 2 >= abi_regs

let addr_uses (a : addr) =
  ir a.base :: (match a.index with None -> [] | Some i -> [ ir i ])

let iop_uses = function Reg r -> [ ir r ] | Imm _ -> []

(* (uses, defs) of one instruction.  Flag effects are not modeled:
   flag-setting and flag-using instructions are never removed. *)
let uses_defs (insn : insn) : int list * int list =
  match insn with
  | Movq (d, s) -> (iop_uses s, [ ir d ])
  | Load (d, a) -> (addr_uses a, [ ir d ])
  | Store (a, s) -> (addr_uses a @ iop_uses s, [])
  | Leaq (d, a) -> (addr_uses a, [ ir d ])
  | Addq (d, s) | Subq (d, s) | Imulq (d, s) | Idivq (d, s) | Iremq (d, s)
  | Andq (d, s) | Orq (d, s) | Xorq (d, s) ->
      (ir d :: iop_uses s, [ ir d ])
  | Negq d | Incq d | Decq d | Shlq (d, _) | Sarq (d, _) ->
      ([ ir d ], [ ir d ])
  | Cmpq (a, b) | Testq (a, b) -> (iop_uses a @ iop_uses b, [])
  | Jmp _ | Nop -> ([], [])
  | Jcc _ -> ([], [])
  | Call _ | Call_ext _ | Ret -> ([], [])  (* handled as barriers *)
  | Movsd_rr (d, s) -> ([ xr s ], [ xr d ])
  | Movsd_load (d, a) -> (addr_uses a, [ xr d ])
  | Movsd_store (a, s) -> (addr_uses a @ [ xr s ], [])
  | Movsd_const (d, _) -> ([], [ xr d ])
  | Movapd (d, s) ->
      if d = s then ([ xr d ], [ xr d; xr (d + 1) ])  (* broadcast *)
      else ([ xr s; xr (s + 1) ], [ xr d; xr (d + 1) ])
  | Movapd_load (d, a) -> (addr_uses a, [ xr d; xr (d + 1) ])
  | Movapd_store (a, s) -> (addr_uses a @ [ xr s; xr (s + 1) ], [])
  | Xorpd d -> ([], [ xr d ])
  | Addsd (d, s) | Subsd (d, s) | Mulsd (d, s) | Divsd (d, s) ->
      ([ xr d; xr s ], [ xr d ])
  | Sqrtsd (d, s) -> ([ xr s ], [ xr d ])
  | Ucomisd (a, b) -> ([ xr a; xr b ], [])
  | Addpd (d, s) | Subpd (d, s) | Mulpd (d, s) | Divpd (d, s) ->
      ([ xr d; xr (d + 1); xr s; xr (s + 1) ], [ xr d; xr (d + 1) ])
  | Cvtsi2sd (d, s) -> ([ ir s ], [ xr d ])
  | Cvttsd2si (d, s) -> ([ xr s ], [ ir d ])
  | Alloc_i (d, n) | Alloc_f (d, n) -> (iop_uses n, [ ir d ])

(* Instructions safe to drop when every defined register is a dead
   local: no memory writes, no flags, no control, no allocation. *)
let pure = function
  | Movq _ | Load _ | Leaq _ | Addq _ | Subq _ | Imulq _ | Idivq _ | Iremq _
  | Negq _ | Andq _ | Orq _ | Xorq _ | Shlq _ | Sarq _ | Incq _ | Decq _
  | Movsd_rr _ | Movsd_load _ | Movsd_const _ | Movapd _ | Movapd_load _
  | Xorpd _ | Addsd _ | Subsd _ | Mulsd _ | Divsd _ | Sqrtsd _ | Cvtsi2sd _
  | Cvttsd2si _ | Addpd _ | Subpd _ | Mulpd _ | Divpd _ ->
      true
  | Store _ | Movsd_store _ | Movapd_store _ | Cmpq _ | Testq _ | Ucomisd _
  | Jmp _ | Jcc _ | Call _ | Call_ext _ | Ret | Nop | Alloc_i _ | Alloc_f _
    ->
      false

module ISet = Set.Make (Int)

(* ---------- liveness over the CFG ---------- *)

let block_starts insns =
  let n = Array.length insns in
  let starts = Array.make n false in
  if n > 0 then starts.(0) <- true;
  Array.iteri
    (fun i insn ->
      match insn with
      | Jmp t | Jcc (_, t) ->
          if t < n then starts.(t) <- true;
          if i + 1 < n then starts.(i + 1) <- true
      | Ret -> if i + 1 < n then starts.(i + 1) <- true
      | _ -> ())
    insns;
  starts

(* live_out.(i): registers live after instruction i.  Fixed point over
   the instruction-level CFG (successors of i are i+1 and/or targets). *)
let live_out_per_insn insns =
  let n = Array.length insns in
  let live_in = Array.make n ISet.empty in
  let live_out = Array.make n ISet.empty in
  let succs i =
    match insns.(i) with
    | Jmp t -> if t < n then [ t ] else []
    | Jcc (_, t) ->
        (if t < n then [ t ] else []) @ if i + 1 < n then [ i + 1 ] else []
    | Ret -> []
    | _ -> if i + 1 < n then [ i + 1 ] else []
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> ISet.union acc live_in.(s))
          ISet.empty (succs i)
      in
      let uses, defs = uses_defs insns.(i) in
      let inn =
        ISet.union
          (ISet.of_list (List.filter is_local uses))
          (ISet.diff out (ISet.of_list defs))
      in
      if not (ISet.equal out live_out.(i)) then begin
        live_out.(i) <- out;
        changed := true
      end;
      if not (ISet.equal inn live_in.(i)) then begin
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  live_out

(* ---------- local copy propagation ---------- *)

(* Within a basic block, rewrite uses of registers that are known
   copies of other local registers.  Only local-to-local scalar moves
   are tracked; any redefinition invalidates affected entries. *)
let copy_propagate insns =
  let n = Array.length insns in
  let starts = block_starts insns in
  let icopy : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let xcopy : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let resolve tbl r =
    match Hashtbl.find_opt tbl r with Some s -> s | None -> r
  in
  let ri r = if r >= abi_regs then resolve icopy r else r in
  let rx r = if r >= abi_regs then resolve xcopy r else r in
  let rop = function Reg r -> Reg (ri r) | Imm n -> Imm n in
  let raddr (a : addr) =
    { a with base = ri a.base; index = Option.map ri a.index }
  in
  let invalidate tbl r =
    Hashtbl.remove tbl r;
    let stale =
      Hashtbl.fold (fun k v acc -> if v = r then k :: acc else acc) tbl []
    in
    List.iter (Hashtbl.remove tbl) stale
  in
  let out = Array.copy insns in
  for i = 0 to n - 1 do
    if starts.(i) then begin
      Hashtbl.reset icopy;
      Hashtbl.reset xcopy
    end;
    (* rewrite uses *)
    let insn =
      match insns.(i) with
      | Movq (d, s) -> Movq (d, rop s)
      | Load (d, a) -> Load (d, raddr a)
      | Store (a, s) -> Store (raddr a, rop s)
      | Leaq (d, a) -> Leaq (d, raddr a)
      | Addq (d, s) -> Addq (d, rop s)
      | Subq (d, s) -> Subq (d, rop s)
      | Imulq (d, s) -> Imulq (d, rop s)
      | Idivq (d, s) -> Idivq (d, rop s)
      | Iremq (d, s) -> Iremq (d, rop s)
      | Andq (d, s) -> Andq (d, rop s)
      | Orq (d, s) -> Orq (d, rop s)
      | Xorq (d, s) -> Xorq (d, rop s)
      | Cmpq (a, b) -> Cmpq (rop a, rop b)
      | Testq (a, b) -> Testq (rop a, rop b)
      | Movsd_rr (d, s) -> Movsd_rr (d, rx s)
      | Movsd_load (d, a) -> Movsd_load (d, raddr a)
      | Movsd_store (a, s) -> Movsd_store (raddr a, rx s)
      | Movapd_load (d, a) -> Movapd_load (d, raddr a)
      | Movapd_store (a, s) -> Movapd_store (raddr a, s)
      | Addsd (d, s) -> Addsd (d, rx s)
      | Subsd (d, s) -> Subsd (d, rx s)
      | Mulsd (d, s) -> Mulsd (d, rx s)
      | Divsd (d, s) -> Divsd (d, rx s)
      | Sqrtsd (d, s) -> Sqrtsd (d, rx s)
      | Ucomisd (a, b) -> Ucomisd (rx a, rx b)
      | Cvtsi2sd (d, s) -> Cvtsi2sd (d, ri s)
      | Cvttsd2si (d, s) -> Cvttsd2si (d, rx s)
      | Alloc_i (d, s) -> Alloc_i (d, rop s)
      | Alloc_f (d, s) -> Alloc_f (d, rop s)
      | insn -> insn
    in
    out.(i) <- insn;
    (* invalidate on defs *)
    let _, defs = uses_defs insn in
    List.iter
      (fun enc ->
        let r = enc / 2 in
        if enc land 1 = 0 then invalidate icopy r else invalidate xcopy r)
      defs;
    (* record fresh local-to-local copies *)
    (match insn with
    | Movq (d, Reg s) when d >= abi_regs && s >= abi_regs && d <> s ->
        Hashtbl.replace icopy d (resolve icopy s)
    | Movsd_rr (d, s) when d >= abi_regs && s >= abi_regs && d <> s ->
        Hashtbl.replace xcopy d (resolve xcopy s)
    | _ -> ())
  done;
  out

(* ---------- dead-move elimination ---------- *)

let eliminate_dead (f : Program.fundef) : Program.fundef * bool =
  let insns = f.insns in
  let n = Array.length insns in
  let live_out = live_out_per_insn insns in
  let keep = Array.make n true in
  let removed = ref false in
  for i = 0 to n - 1 do
    let insn = insns.(i) in
    if pure insn then begin
      let _, defs = uses_defs insn in
      if defs <> [] && List.for_all is_local defs
         && List.for_all (fun d -> not (ISet.mem d live_out.(i))) defs
      then begin
        keep.(i) <- false;
        removed := true
      end
    end
  done;
  if not !removed then (f, false)
  else begin
    let new_index = Array.make (n + 1) 0 in
    let count = ref 0 in
    for i = 0 to n - 1 do
      new_index.(i) <- !count;
      if keep.(i) then incr count
    done;
    new_index.(n) <- !count;
    let insns' = Array.make !count Nop in
    let debug' = Array.make (max 1 !count) { Program.line = 0; col = 0 } in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        insns'.(!j) <-
          (match insns.(i) with
          | Jmp t -> Jmp new_index.(t)
          | Jcc (c, t) -> Jcc (c, new_index.(t))
          | insn -> insn);
        debug'.(!j) <- f.debug.(i);
        incr j
      end
    done;
    ({ f with insns = insns'; debug = Array.sub debug' 0 !count }, true)
  end

let fundef (f : Program.fundef) : Program.fundef =
  (* propagate, eliminate, repeat until stable (bounded) *)
  let rec go (f : Program.fundef) rounds =
    if rounds = 0 then f
    else
      let f = { f with Program.insns = copy_propagate f.Program.insns } in
      let f, changed = eliminate_dead f in
      if changed then go f (rounds - 1) else f
  in
  go f 4

let program (p : Program.t) : Program.t =
  { p with funs = List.map fundef p.funs }
