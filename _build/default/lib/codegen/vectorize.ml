open Mira_visa
open Mira_visa.Isa

(* Remap xmm registers to even frame-local indices so every register
   has a free pair slot (r, r+1).  ABI registers stay put. *)
let remap_xregs (f : Program.fundef) : Program.fundef =
  let m r = if r < abi_regs then r else abi_regs + (2 * (r - abi_regs)) in
  let insns =
    Array.map
      (fun insn ->
        match insn with
        | Movsd_rr (d, s) -> Movsd_rr (m d, m s)
        | Movsd_load (d, a) -> Movsd_load (m d, a)
        | Movsd_store (a, s) -> Movsd_store (a, m s)
        | Movsd_const (d, k) -> Movsd_const (m d, k)
        | Movapd (d, s) -> Movapd (m d, m s)
        | Movapd_load (d, a) -> Movapd_load (m d, a)
        | Movapd_store (a, s) -> Movapd_store (a, m s)
        | Xorpd d -> Xorpd (m d)
        | Addsd (d, s) -> Addsd (m d, m s)
        | Subsd (d, s) -> Subsd (m d, m s)
        | Mulsd (d, s) -> Mulsd (m d, m s)
        | Divsd (d, s) -> Divsd (m d, m s)
        | Sqrtsd (d, s) -> Sqrtsd (m d, m s)
        | Ucomisd (d, s) -> Ucomisd (m d, m s)
        | Addpd (d, s) -> Addpd (m d, m s)
        | Subpd (d, s) -> Subpd (m d, m s)
        | Mulpd (d, s) -> Mulpd (m d, m s)
        | Divpd (d, s) -> Divpd (m d, m s)
        | Cvtsi2sd (d, s) -> Cvtsi2sd (m d, s)
        | Cvttsd2si (d, s) -> Cvttsd2si (d, m s)
        | insn -> insn)
      f.insns
  in
  let n_xregs = abi_regs + (2 * (f.n_xregs - abi_regs)) + 2 in
  { f with insns; n_xregs }

type loop_info = {
  header : int;  (* address of the Cmpq *)
  jcc_at : int;
  body_lo : int;
  incq_at : int;
  jmp_at : int;
  counter : ireg;
}

(* Find innermost loops: a backward Jmp to a Cmpq/Jcc pair, with the
   counter increment immediately before the Jmp. *)
let find_loops (f : Program.fundef) : loop_info list =
  let acc = ref [] in
  Array.iteri
    (fun j insn ->
      match insn with
      | Jmp t when t < j && j >= 2 -> (
          match (f.insns.(t), f.insns.(t + 1), f.insns.(j - 1)) with
          | Cmpq (Reg r, _), Jcc ((GE | G | LE | L | E | NE), exit_), Incq r'
            when r = r' && exit_ = j + 1 ->
              acc :=
                {
                  header = t;
                  jcc_at = t + 1;
                  body_lo = t + 2;
                  incq_at = j - 1;
                  jmp_at = j;
                  counter = r;
                }
                :: !acc
          | _ -> ())
      | _ -> ())
    f.insns;
  !acc

(* The loop body (between body_lo and incq_at, exclusive) is eligible
   when it is straight-line scalar SSE2 code with stride-1 accesses
   indexed by the counter and no loop-carried floating-point values
   (reductions must stay scalar: packed lanes would accumulate
   independent partial sums). *)
let eligible (f : Program.fundef) (l : loop_info) : bool =
  let ok = ref (l.incq_at > l.body_lo) in
  let written = Hashtbl.create 8 in
  let carried = ref false in
  let read r =
    (* a register read before any write in the body is live-in; if the
       body also writes it, the value is loop-carried *)
    if not (Hashtbl.mem written r) then
      Hashtbl.replace written r `Live_in
  in
  let write r =
    (match Hashtbl.find_opt written r with
    | Some `Live_in -> carried := true
    | _ -> ());
    Hashtbl.replace written r `Written
  in
  for i = l.body_lo to l.incq_at - 1 do
    (match f.insns.(i) with
    | Movsd_load (d, a) ->
        if not (a.index = Some l.counter && a.scale = 1) then ok := false;
        write d
    | Movsd_store (a, s) ->
        if not (a.index = Some l.counter && a.scale = 1) then ok := false;
        read s
    | Movsd_rr (d, s) ->
        read s;
        write d
    | Movsd_const (d, _) | Xorpd d -> write d
    | Addsd (d, s) | Subsd (d, s) | Mulsd (d, s) | Divsd (d, s) ->
        read s;
        read d;
        write d
    | _ -> ok := false)
  done;
  !ok && not !carried

(* Registers read in the body before being written there: live-in
   scalars that need broadcasting. *)
let live_in_xregs (f : Program.fundef) (l : loop_info) : xreg list =
  let written = Hashtbl.create 8 in
  let live = ref [] in
  let read r =
    if (not (Hashtbl.mem written r)) && not (List.mem r !live) then
      live := r :: !live
  in
  let write r = Hashtbl.replace written r () in
  for i = l.body_lo to l.incq_at - 1 do
    match f.insns.(i) with
    | Movsd_load (d, _) -> write d
    | Movsd_store (_, s) -> read s
    | Movsd_rr (d, s) ->
        read s;
        write d
    | Movsd_const (d, _) | Xorpd d -> write d
    | Addsd (d, s) | Subsd (d, s) | Mulsd (d, s) | Divsd (d, s) ->
        read s;
        read d;
        write d
    | _ -> ()
  done;
  List.rev !live

let pack = function
  | Movsd_load (d, a) -> Movapd_load (d, a)
  | Movsd_store (a, s) -> Movapd_store (a, s)
  | Movsd_rr (d, s) -> Movapd (d, s)
  | Addsd (d, s) -> Addpd (d, s)
  | Subsd (d, s) -> Subpd (d, s)
  | Mulsd (d, s) -> Mulpd (d, s)
  | Divsd (d, s) -> Divpd (d, s)
  | insn -> insn  (* Movsd_const / Xorpd handled via broadcast *)

let transform_fundef (f : Program.fundef) : Program.fundef =
  let loops = List.filter (eligible f) (find_loops f) in
  if loops = [] then f
  else
    let f = remap_xregs f in
    (* Only `i < bound` loops (GE-exit, register counter) are
       transformed: that shape admits the scalar remainder epilogue
       below, so vectorization is correct for any trip count. *)
    let loops =
      List.filter
        (fun l ->
          (match f.insns.(l.jcc_at) with
          | Jcc (GE, e) -> e = l.jmp_at + 1
          | _ -> false)
          && eligible f l)
        (find_loops f)
    in
    if loops = [] then f
    else begin
      let n = Array.length f.insns in
      let fresh_ireg = ref f.n_iregs in
      (* per-loop rewrite plans *)
      let pre : (int, (Isa.insn * Program.debug) list) Hashtbl.t =
        Hashtbl.create 8
      in
      let hdr_cmp : (int, Isa.insn) Hashtbl.t = Hashtbl.create 8 in
      let epi : (int, loop_info) Hashtbl.t = Hashtbl.create 8 in
      let back_jumps : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun l ->
          let dbg_hdr = f.debug.(l.header) in
          let casts =
            List.map
              (fun r -> (Movapd (r, r), dbg_hdr))
              (live_in_xregs f l)
            (* Movapd (r, r) is a stand-in for unpcklpd r, r: the VM
               broadcasts the low lane on self-moves *)
          in
          let bound_items, new_cmp =
            match f.insns.(l.header) with
            | Cmpq (Reg r, Imm k) -> ([], Cmpq (Reg r, Imm (k - 1)))
            | Cmpq (Reg r, Reg b) ->
                let tmp = !fresh_ireg in
                incr fresh_ireg;
                ( [ (Movq (tmp, Reg b), dbg_hdr); (Decq tmp, dbg_hdr) ],
                  Cmpq (Reg r, Reg tmp) )
            | _ -> assert false
          in
          Hashtbl.replace pre l.header (bound_items @ casts);
          Hashtbl.replace hdr_cmp l.header new_cmp;
          Hashtbl.replace epi (l.jmp_at + 1) l;
          Hashtbl.replace back_jumps l.jmp_at ())
        loops;
      let in_body i =
        List.exists (fun l -> i >= l.body_lo && i < l.incq_at) loops
      in
      let is_incq i = List.exists (fun l -> i = l.incq_at) loops in
      (* item: instruction, debug, and whether its jump target is in
         the OLD index space (needs remapping) *)
      let buf = ref [] in
      let count = ref 0 in
      let emit ?(remap = false) insn dbg =
        buf := (insn, dbg, remap) :: !buf;
        incr count
      in
      let new_index = Array.make (n + 1) 0 in
      let insn_pos = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        new_index.(i) <- !count;
        (* scalar remainder epilogue sits at the loop's exit point, so
           the main loop's exit lands on it *)
        (match Hashtbl.find_opt epi i with
        | Some l ->
            let counter =
              match f.insns.(l.incq_at) with
              | Incq r -> r
              | _ -> assert false
            in
            let bound =
              match f.insns.(l.header) with
              | Cmpq (_, op) -> op
              | _ -> assert false
            in
            let body_len = l.incq_at - l.body_lo in
            let after = !count + 2 + body_len + 1 in
            emit (Cmpq (Reg counter, bound)) f.debug.(l.header);
            emit (Jcc (GE, after)) f.debug.(l.jcc_at);
            for k = l.body_lo to l.incq_at - 1 do
              emit f.insns.(k) f.debug.(k)
            done;
            emit (Incq counter) f.debug.(l.incq_at)
        | None -> ());
        (match Hashtbl.find_opt pre i with
        | Some items -> List.iter (fun (insn, dbg) -> emit insn dbg) items
        | None -> ());
        insn_pos.(i) <- !count;
        let insn =
          if Hashtbl.mem hdr_cmp i then Hashtbl.find hdr_cmp i
          else if in_body i then pack f.insns.(i)
          else if is_incq i then
            Addq
              ( (match f.insns.(i) with Incq r -> r | _ -> assert false),
                Imm 2 )
          else f.insns.(i)
        in
        (* back-jumps re-enter after the preheader; other jumps remap
           straight through *)
        if Hashtbl.mem back_jumps i then begin
          match insn with
          | Jmp t ->
              buf := (Jmp t, f.debug.(i), true) :: !buf;
              incr count
          | _ -> assert false
        end
        else emit ~remap:true insn f.debug.(i)
      done;
      new_index.(n) <- !count;
      (* skip preheaders when re-entering loops from their back-jumps *)
      let headers = Hashtbl.create 8 in
      List.iter (fun l -> Hashtbl.replace headers l.header ()) loops;
      let items = Array.of_list (List.rev !buf) in
      let insns =
        Array.map
          (fun (insn, _, remap) ->
            if not remap then insn
            else
              match insn with
              | Jmp t when Hashtbl.mem headers t -> Jmp insn_pos.(t)
              | Jmp t -> Jmp new_index.(t)
              | Jcc (c, t) -> Jcc (c, new_index.(t))
              | insn -> insn)
          items
      in
      let debug = Array.map (fun (_, d, _) -> d) items in
      { f with insns; debug; n_iregs = !fresh_ireg }
    end

let program (p : Program.t) : Program.t =
  { p with funs = List.map transform_fundef p.funs }

let vectorized_lines (p : Program.t) : (string * int list) list =
  List.filter_map
    (fun (f : Program.fundef) ->
      let lines = ref [] in
      Array.iteri
        (fun i insn ->
          if Isa.is_packed insn then
            let line = f.debug.(i).Program.line in
            if not (List.mem line !lines) then lines := line :: !lines)
        f.insns;
      if !lines = [] then None else Some (f.name, List.sort compare !lines))
    p.funs
