(* The machine-readable surface, pinned byte-for-byte.

   [--format json] and the daemon's watch/reanalyze frame bodies share
   one encoder ({!Mira_core.Json}); external tooling parses its output,
   so the schema is frozen by golden bytes: escaping, float rendering,
   span/diag/model/batch documents.  Any intentional schema change
   regenerates the pins with

     MIRA_GOLDEN_GEN=1 dune exec test/test_json.exe

   and pastes the printed list over [pinned_goldens] — a diff in the
   pins is then a visible, reviewed schema change rather than a silent
   one.

   The second half is the multi-span rendering suite: the head line of
   [Diag.to_string] must stay byte-identical to the pre-multi-span
   format (one line, no spans rendered) while labelled spans append
   indented [at L:C: label] lines, and [Diag.to_editor_string] must
   emit one GNU-style line per span. *)

open Mira_core

let level = Mira_codegen.Codegen.O1
let limits = Limits.default

(* ---------------- fixtures ---------------- *)

let pos = Mira_srclang.Loc.pos

let diag_compat =
  Diag.make ~pos:(pos 3 7) Diag.Parse Diag.User_error "expected \";\""

let diag_multi =
  Diag.make_spans Diag.Typecheck Diag.User_error "2 type errors"
    [
      Diag.span ~label:"undeclared variable `x`" (pos 2 5);
      Diag.span ~label:"int/double mismatch" (pos 9 12);
    ]

let diag_bare = Diag.make Diag.Driver Diag.Io_error "disk full"

let tiny_src =
  "int f(int n) {\n\
  \  int acc = 0;\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    acc = acc + 2;\n\
  \  }\n\
  \  return acc;\n\
   }\n"

let bad_src = "int broken(int n) {\n  return\n"

let tiny_batch () =
  Batch.run ~jobs:1 ~incremental:false ~level ~limits
    [
      { Batch.src_name = "tiny.mc"; src_text = tiny_src };
      { Batch.src_name = "broken.mc"; src_text = bad_src };
    ]

let tiny_model () =
  match tiny_batch () with
  | [ Ok a; _ ], _ -> a.Batch.a_model
  | _ -> Alcotest.fail "tiny.mc failed to analyze"

(* ---------------- goldens ---------------- *)

let current_goldens () =
  let results, stats = tiny_batch () in
  [
    ( "escape",
      Json.to_string
        (Json.Str "quote:\" back:\\ nl:\n cr:\r tab:\t ctl:\x01 utf8:\xc3\xa9")
    );
    ( "scalars",
      Json.to_string
        (Json.Arr
           [
             Json.Null;
             Json.Bool true;
             Json.Bool false;
             Json.Int 42;
             Json.Int (-7);
             Json.Float 1.0;
             Json.Float 0.5;
             Json.Float (1.0 /. 3.0);
             Json.Float Float.nan;
             Json.Raw "{\"pre\":1}";
           ]) );
    ("span", Json.to_string (Json.of_span (Diag.span ~label:"here" (pos 3 7))));
    ( "span-unlabelled",
      Json.to_string (Json.of_span (Diag.span (pos 1 1))) );
    ("diag-compat", Json.to_string (Json.of_diag diag_compat));
    ("diag-multi-span", Json.to_string (Json.of_diag diag_multi));
    ("diag-no-span", Json.to_string (Json.of_diag diag_bare));
    ("model", Json.to_string (Json.of_model (tiny_model ())));
    ("batch", Json.to_string (Json.of_batch results stats));
  ]

(* generated with MIRA_GOLDEN_GEN=1 (see the header) *)
let pinned_goldens : (string * string) list =
  [
    ("escape", "\"quote:\\\" back:\\\\ nl:\\n cr:\\r tab:\\t ctl:\\u0001 utf8:\195\169\"");
    ("scalars", "[null,true,false,42,-7,1.0,0.5,0.33333333333333331,null,{\"pre\":1}]");
    ("span", "{\"label\":\"here\",\"line\":3,\"col\":7}");
    ("span-unlabelled", "{\"label\":null,\"line\":1,\"col\":1}");
    ("diag-compat", "{\"phase\":\"parse\",\"kind\":\"error\",\"message\":\"expected \\\";\\\"\",\"spans\":[{\"label\":null,\"line\":3,\"col\":7}],\"rendered\":\"parse error at 3:7: expected \\\";\\\"\"}");
    ("diag-multi-span", "{\"phase\":\"type\",\"kind\":\"error\",\"message\":\"2 type errors\",\"spans\":[{\"label\":\"undeclared variable `x`\",\"line\":2,\"col\":5},{\"label\":\"int/double mismatch\",\"line\":9,\"col\":12}],\"rendered\":\"type error at 2:5: 2 type errors\\n  at 2:5: undeclared variable `x`\\n  at 9:12: int/double mismatch\"}");
    ("diag-no-span", "{\"phase\":\"driver\",\"kind\":\"I/O error\",\"message\":\"disk full\",\"spans\":[],\"rendered\":\"I/O error: disk full\"}");
    ("model", "{\"file\":\"tiny.mc\",\"functions\":[{\"name\":\"f\",\"python_name\":\"f_1\",\"class\":null,\"arity\":1,\"params\":[\"n\"],\"source_params\":[\"n\"],\"warnings\":[],\"python\":\"def f_1(n):\\n    m = {}\\n    # line 2 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-init)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-cond)\\n    bump(m, \\\"cmpq\\\", (n) + (1))\\n    bump(m, \\\"jge\\\", (n) + (1))\\n    # line 3 (loop-step)\\n    bump(m, \\\"incq\\\", (n))\\n    bump(m, \\\"jmp\\\", (n))\\n    # line 4 (stmt)\\n    bump(m, \\\"addq\\\", (n))\\n    bump(m, \\\"movq\\\", 2 * ((n)))\\n    # line 6 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    bump(m, \\\"ret\\\", (1))\\n    # line 1 (overhead)\\n    bump(m, \\\"movq\\\", (1))\\n    return m\\n\"}],\"python\":\"# Performance model generated by Mira from tiny.mc\\n# Evaluate a function to obtain its per-instruction-category counts\\n# for one invocation; parameters preserve statically-unknown values\\n# (loop bounds from inputs, annotation variables).\\n\\ndef handle_function_call(caller, callee, iters):\\n    for k in callee:\\n        caller[k] = caller.get(k, 0) + callee[k] * iters\\n    return caller\\n\\ndef bump(m, k, c):\\n    m[k] = m.get(k, 0) + c\\n    return m\\n\\ndef f_1(n):\\n    m = {}\\n    # line 2 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-init)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-cond)\\n    bump(m, \\\"cmpq\\\", (n) + (1))\\n    bump(m, \\\"jge\\\", (n) + (1))\\n    # line 3 (loop-step)\\n    bump(m, \\\"incq\\\", (n))\\n    bump(m, \\\"jmp\\\", (n))\\n    # line 4 (stmt)\\n    bump(m, \\\"addq\\\", (n))\\n    bump(m, \\\"movq\\\", 2 * ((n)))\\n    # line 6 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    bump(m, \\\"ret\\\", (1))\\n    # line 1 (overhead)\\n    bump(m, \\\"movq\\\", (1))\\n    return m\\n\"}");
    ("batch", "{\"results\":[{\"status\":\"ok\",\"file\":\"tiny.mc\",\"cached\":false,\"functions\":[{\"name\":\"f\",\"python_name\":\"f_1\",\"class\":null,\"arity\":1,\"params\":[\"n\"],\"source_params\":[\"n\"],\"warnings\":[],\"python\":\"def f_1(n):\\n    m = {}\\n    # line 2 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-init)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-cond)\\n    bump(m, \\\"cmpq\\\", (n) + (1))\\n    bump(m, \\\"jge\\\", (n) + (1))\\n    # line 3 (loop-step)\\n    bump(m, \\\"incq\\\", (n))\\n    bump(m, \\\"jmp\\\", (n))\\n    # line 4 (stmt)\\n    bump(m, \\\"addq\\\", (n))\\n    bump(m, \\\"movq\\\", 2 * ((n)))\\n    # line 6 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    bump(m, \\\"ret\\\", (1))\\n    # line 1 (overhead)\\n    bump(m, \\\"movq\\\", (1))\\n    return m\\n\"}],\"warnings\":[],\"python\":\"# Performance model generated by Mira from tiny.mc\\n# Evaluate a function to obtain its per-instruction-category counts\\n# for one invocation; parameters preserve statically-unknown values\\n# (loop bounds from inputs, annotation variables).\\n\\ndef handle_function_call(caller, callee, iters):\\n    for k in callee:\\n        caller[k] = caller.get(k, 0) + callee[k] * iters\\n    return caller\\n\\ndef bump(m, k, c):\\n    m[k] = m.get(k, 0) + c\\n    return m\\n\\ndef f_1(n):\\n    m = {}\\n    # line 2 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-init)\\n    bump(m, \\\"movq\\\", (1))\\n    # line 3 (loop-cond)\\n    bump(m, \\\"cmpq\\\", (n) + (1))\\n    bump(m, \\\"jge\\\", (n) + (1))\\n    # line 3 (loop-step)\\n    bump(m, \\\"incq\\\", (n))\\n    bump(m, \\\"jmp\\\", (n))\\n    # line 4 (stmt)\\n    bump(m, \\\"addq\\\", (n))\\n    bump(m, \\\"movq\\\", 2 * ((n)))\\n    # line 6 (stmt)\\n    bump(m, \\\"movq\\\", (1))\\n    bump(m, \\\"ret\\\", (1))\\n    # line 1 (overhead)\\n    bump(m, \\\"movq\\\", (1))\\n    return m\\n\"},{\"status\":\"error\",\"file\":\"broken.mc\",\"diag\":{\"phase\":\"parse\",\"kind\":\"error\",\"message\":\"expected expression, found \\\"<eof>\\\"\",\"spans\":[{\"label\":null,\"line\":3,\"col\":1}],\"rendered\":\"parse error at 3:1: expected expression, found \\\"<eof>\\\"\"}}],\"stats\":{\"total\":2,\"analyzed\":1,\"mem_hits\":0,\"disk_hits\":0,\"failed\":1,\"jobs\":1,\"budget\":0,\"injected\":0,\"cache_corrupt\":0,\"io_retries\":0,\"io_failures\":0,\"assembled\":0,\"fn_mem_hits\":0,\"fn_disk_hits\":0,\"fn_analyzed\":0}}");
  ]

let check_goldens () =
  let current = current_goldens () in
  Alcotest.(check (list string))
    "golden set is complete" (List.map fst current)
    (List.map fst pinned_goldens);
  List.iter
    (fun (name, bytes) ->
      match List.assoc_opt name pinned_goldens with
      | None -> Alcotest.failf "golden %s has no pinned bytes" name
      | Some pinned -> Alcotest.(check string) name pinned bytes)
    current

(* the CLI document is exactly the library encoding: `mira batch
   --format json` must print Json.of_batch and nothing else *)
let check_cli_batch_json () =
  let dir = Filename.get_temp_dir_name () in
  let src = Filename.concat dir (Printf.sprintf "json-cli-%d.mc" (Unix.getpid ())) in
  Out_channel.with_open_bin src (fun oc -> Out_channel.output_string oc tiny_src);
  Fun.protect
    ~finally:(fun () -> try Sys.remove src with Sys_error _ -> ())
    (fun () ->
      let mira_exe = Filename.concat (Filename.concat ".." "bin") "mira.exe" in
      let ic =
        Unix.open_process_in
          (Filename.quote_command mira_exe [ "batch"; src; "--format"; "json" ])
      in
      let out = In_channel.input_all ic in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "mira batch --format json exited non-zero");
      let results, stats =
        Batch.run ~jobs:1 ~incremental:false ~level ~limits
          [ { Batch.src_name = Filename.basename src; src_text = tiny_src } ]
      in
      Alcotest.(check string)
        "CLI output is the library encoding + newline"
        (Json.to_string (Json.of_batch results stats) ^ "\n")
        out)

(* ---------------- multi-span rendering ---------------- *)

let check_to_string () =
  Alcotest.(check string)
    "compat head line is byte-identical to the pre-multi-span format"
    "parse error at 3:7: expected \";\""
    (Diag.to_string diag_compat);
  Alcotest.(check string)
    "labelled spans append indented lines"
    "type error at 2:5: 2 type errors\n\
    \  at 2:5: undeclared variable `x`\n\
    \  at 9:12: int/double mismatch"
    (Diag.to_string diag_multi);
  Alcotest.(check string)
    "a span-free diagnostic is one line" "I/O error: disk full"
    (Diag.to_string diag_bare)

let check_to_editor_string () =
  Alcotest.(check string)
    "one GNU-style line per span, span labels as the message"
    "lu.mc:2:5: type error: undeclared variable `x`\n\
     lu.mc:9:12: type error: int/double mismatch"
    (Diag.to_editor_string ~file:"lu.mc" diag_multi);
  Alcotest.(check string)
    "file defaults to <input>" "<input>:3:7: parse error: expected \";\""
    (Diag.to_editor_string diag_compat);
  Alcotest.(check string)
    "positionless diagnostics still carry the file"
    "lu.mc: I/O error: disk full"
    (Diag.to_editor_string ~file:"lu.mc" diag_bare)

let check_primary_pos () =
  (match Diag.primary_pos diag_multi with
  | Some p ->
      Alcotest.(check (pair int int))
        "primary span is the first" (2, 5)
        (p.Mira_srclang.Loc.line, p.Mira_srclang.Loc.col)
  | None -> Alcotest.fail "multi-span diag lost its primary position");
  Alcotest.(check bool)
    "span-free diag has no primary position" true
    (Diag.primary_pos diag_bare = None)

(* a multi-error typecheck failure arrives as one diagnostic with one
   labelled span per error — the end-to-end source of multi-span *)
let check_multi_error_pipeline () =
  let two_errors = "int f(int n) {\n  return missing_a + missing_b;\n}\n" in
  match
    Batch.run ~jobs:1 ~incremental:false ~level ~limits
      [ { Batch.src_name = "two.mc"; src_text = two_errors } ]
  with
  | [ Error (_, d) ], _ ->
      Alcotest.(check bool)
        "at least two spans" true
        (List.length d.Diag.d_spans >= 2);
      List.iter
        (fun (s : Diag.span) ->
          Alcotest.(check bool)
            "every span is labelled" true
            (s.Diag.sp_label <> None))
        d.Diag.d_spans
  | _ -> Alcotest.fail "two.mc unexpectedly analyzed"

let () =
  if Sys.getenv_opt "MIRA_GOLDEN_GEN" <> None then begin
    List.iter
      (fun (k, v) -> Printf.printf "    (%S, %S);\n" k v)
      (current_goldens ());
    exit 0
  end;
  Alcotest.run "json"
    [
      ( "goldens",
        [
          Alcotest.test_case "pinned bytes" `Quick check_goldens;
          Alcotest.test_case "cli batch --format json" `Quick
            check_cli_batch_json;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "to_string" `Quick check_to_string;
          Alcotest.test_case "to_editor_string" `Quick check_to_editor_string;
          Alcotest.test_case "primary_pos" `Quick check_primary_pos;
          Alcotest.test_case "multi-error pipeline" `Quick
            check_multi_error_pipeline;
        ] );
    ]
