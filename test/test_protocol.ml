(* Wire-conformance golden suite.

   docs/PROTOCOL.md is the stable wire API; this file pins it at the
   byte level.  The golden strings below were generated against the
   thread-per-connection server (the wire format's reference
   implementation) and are asserted two ways:

   - codec goldens: what [encode_request]/[encode_response]/the frame
     layer emit today must equal the pinned legacy bytes;
   - live goldens: a freshly built server, driven over a raw socket,
     must answer with exactly the pinned bytes — response payloads,
     whole frames (magic, length, digest), error-taxonomy codes, the
     unsolicited overloaded frame, and the drop-after-desync rule.

   Regenerate (after an *intentional* wire change only) with:
     MIRA_GOLDEN_GEN=1 dune exec test/test_protocol.exe
   and paste the printed list over [pinned_goldens]. *)

open Mira_core

let seed =
  match Sys.getenv_opt "MIRA_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "MIRA_FAULT_SEED must be an integer")
  | None -> 20260806

let temp_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

(* ---------- raw wire helpers (deliberately independent of Serve's
   reader, so the bytes on the socket are what is asserted) ---------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> None
  in
  go 0

let header_len = String.length Serve.magic + 4
let digest_len = 16

let of_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* one whole frame, raw: header + digest + payload bytes *)
let read_raw_frame fd =
  match read_exactly fd header_len with
  | None -> None
  | Some header -> (
      let len = of_be32 header (String.length Serve.magic) in
      match read_exactly fd (digest_len + len) with
      | None -> None
      | Some rest -> Some (header ^ rest))

let payload_of_raw raw =
  String.sub raw (header_len + digest_len)
    (String.length raw - header_len - digest_len)

(* what write_frame actually puts on the wire, captured via a temp
   file (a pipe would deadlock on frames past the pipe buffer) so the
   golden pins the implementation, not a re-derivation *)
let frame_bytes payload =
  let path = temp_name "mira-frame" in
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC ] 0o600 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Serve.write_frame fd payload;
      let len = Unix.lseek fd 0 Unix.SEEK_END in
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      match read_exactly fd len with
      | Some s -> s
      | None -> Alcotest.fail "short frame capture")

(* ---------- the golden set ---------- *)

let golden_source = "int f(int n) { return n + 1; }"

let error_codes =
  [
    "bad-frame";
    "bad-request";
    "analysis";
    "budget";
    "timeout";
    "io";
    "cache";
    "injected";
    "internal";
  ]

let current_goldens () =
  let open Serve in
  let tag id (r : response) =
    { r with rs_fields = ("id", id) :: r.rs_fields }
  in
  let ok_ping =
    { rs_status = "ok"; rs_fields = [ ("pong", "1") ]; rs_body = "" }
  in
  let overloaded =
    { rs_status = "overloaded"; rs_fields = [ ("retry", "1") ]; rs_body = "" }
  in
  let err code =
    {
      rs_status = "error";
      rs_fields = [ ("code", code); ("message", "golden message") ];
      rs_body = "";
    }
  in
  let budget =
    { rq_fuel = Some 100; rq_timeout_ms = Some 500; rq_depth = Some 32 }
  in
  let analyze =
    Analyze { an_name = "m.mc"; an_source = golden_source; an_budget = budget }
  in
  let eval =
    Eval
      {
        ev_name = "m.mc";
        ev_source = golden_source;
        ev_function = "f";
        ev_params = [ ("n", 8); ("m", 2) ];
        ev_budget = no_budget;
      }
  in
  [
    ("request.ping", encode_request Ping);
    ("request.ping.tagged", encode_request ~id:"7" Ping);
    ("request.stats", encode_request Stats);
    ("request.shutdown", encode_request Shutdown);
    ("request.analyze.budget", encode_request analyze);
    ("request.eval.tagged", encode_request ~id:"sweep-3" eval);
    ("response.ok.ping", encode_response ok_ping);
    ("response.ok.ping.tagged", encode_response (tag "42" ok_ping));
    ("response.overloaded", encode_response overloaded);
    ( "response.error.diag",
      encode_response
        {
          rs_status = "error";
          rs_fields =
            [
              ("code", "analysis");
              ("message", "parse error at 1:5: golden");
              ("phase", "parse");
              ("kind", "user-error");
            ];
          rs_body = "";
        } );
    ("frame.request.ping", frame_bytes (encode_request Ping));
    ("frame.response.ok.ping", frame_bytes (encode_response ok_ping));
  ]
  @ List.map
      (fun code -> ("response.error." ^ code, encode_response (err code)))
      error_codes

(* generated with MIRA_GOLDEN_GEN=1 against the pre-event-loop server *)
let pinned_goldens : (string * string) list =
  [
    ("request.ping", "mira/1 ping\n\n");
    ("request.ping.tagged", "mira/1 ping\nid=7\n\n");
    ("request.stats", "mira/1 stats\n\n");
    ("request.shutdown", "mira/1 shutdown\n\n");
    ( "request.analyze.budget",
      "mira/1 analyze\nname=m.mc\nfuel=100\ntimeout-ms=500\ndepth=32\n\n\
       int f(int n) { return n + 1; }" );
    ( "request.eval.tagged",
      "mira/1 eval\nid=sweep-3\nname=m.mc\nfunction=f\nparam=n=8\n\
       param=m=2\n\nint f(int n) { return n + 1; }" );
    ("response.ok.ping", "mira/1 ok\npong=1\n\n");
    ("response.ok.ping.tagged", "mira/1 ok\nid=42\npong=1\n\n");
    ("response.overloaded", "mira/1 overloaded\nretry=1\n\n");
    ( "response.error.diag",
      "mira/1 error\ncode=analysis\nmessage=parse error at 1:5: golden\n\
       phase=parse\nkind=user-error\n\n" );
    ( "frame.request.ping",
      "MIRS1\n\000\000\000\ry]\203D\183\130\182\138(\0058\213\190qh\195mira/1 \
       ping\n\n" );
    ( "frame.response.ok.ping",
      "MIRS1\n\000\000\000\01874\132\239\140\146\169\149\144\241\t\024 \
       \167T\011mira/1 ok\npong=1\n\n" );
    ( "response.error.bad-frame",
      "mira/1 error\ncode=bad-frame\nmessage=golden message\n\n" );
    ( "response.error.bad-request",
      "mira/1 error\ncode=bad-request\nmessage=golden message\n\n" );
    ( "response.error.analysis",
      "mira/1 error\ncode=analysis\nmessage=golden message\n\n" );
    ( "response.error.budget",
      "mira/1 error\ncode=budget\nmessage=golden message\n\n" );
    ( "response.error.timeout",
      "mira/1 error\ncode=timeout\nmessage=golden message\n\n" );
    ("response.error.io", "mira/1 error\ncode=io\nmessage=golden message\n\n");
    ( "response.error.cache",
      "mira/1 error\ncode=cache\nmessage=golden message\n\n" );
    ( "response.error.injected",
      "mira/1 error\ncode=injected\nmessage=golden message\n\n" );
    ( "response.error.internal",
      "mira/1 error\ncode=internal\nmessage=golden message\n\n" );
  ]

(* ---------- codec goldens ---------- *)

let check_goldens () =
  let current = current_goldens () in
  Alcotest.(check (list string))
    "golden set is complete" (List.map fst current)
    (List.map fst pinned_goldens);
  List.iter
    (fun (name, bytes) ->
      match List.assoc_opt name pinned_goldens with
      | None -> Alcotest.failf "golden %s has no pinned bytes" name
      | Some pinned -> Alcotest.(check string) name pinned bytes)
    current

(* the documented frame layout (offset/size table in PROTOCOL.md) must
   be exactly what the implementation emits *)
let check_frame_layout () =
  List.iter
    (fun payload ->
      let raw = frame_bytes payload in
      let len = String.length payload in
      Alcotest.(check string)
        "magic" Serve.magic
        (String.sub raw 0 (String.length Serve.magic));
      Alcotest.(check int)
        "declared length" len
        (of_be32 raw (String.length Serve.magic));
      Alcotest.(check string)
        "digest covers only the payload"
        (Digest.string payload)
        (String.sub raw header_len digest_len);
      Alcotest.(check string)
        "payload" payload (payload_of_raw raw);
      Alcotest.(check int)
        "nothing after the payload"
        (header_len + digest_len + len)
        (String.length raw))
    [
      Serve.encode_request Serve.Ping;
      Serve.encode_request ~id:"9" Serve.Stats;
      "";
      String.make 100_000 'x';
    ]

(* ---------- live server harness ---------- *)

let with_server ?(cfg = fun c -> c) f =
  let socket = temp_name "mira-proto" ^ ".sock" in
  let config = cfg (Serve.default_config ~socket) in
  let server = Serve.create config in
  let th = Thread.create (fun () -> ignore (Serve.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      Alcotest.(check bool)
        "daemon is up" true
        (Client.wait_ready (Endpoint.Unix_sock socket));
      f socket)

let with_conn socket f =
  let fd = Serve.connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let golden name =
  match List.assoc_opt name pinned_goldens with
  | Some v -> v
  | None -> Alcotest.failf "no pinned golden named %s" name

(* ---------- live: pinned bytes over a real socket ---------- *)

let live_ping_bytes () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          (* send the pinned request frame verbatim; the whole response
             frame — header, digest and payload — must be pinned bytes *)
          write_all fd (golden "frame.request.ping");
          match read_raw_frame fd with
          | None -> Alcotest.fail "no response frame"
          | Some raw ->
              Alcotest.(check string)
                "response frame bytes"
                (golden "frame.response.ok.ping")
                raw))

let live_tagged_ping () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          Serve.write_frame fd (Serve.encode_request ~id:"42" Serve.Ping);
          match Serve.read_frame fd with
          | Error e -> Alcotest.failf "read: %s" (Serve.frame_error_to_string e)
          | Ok payload ->
              Alcotest.(check string)
                "tagged response payload"
                (golden "response.ok.ping.tagged")
                payload))

let live_bad_request () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          Serve.write_frame fd "mira/1 bogus\n\n";
          (match Serve.read_frame fd with
          | Ok payload ->
              Alcotest.(check string)
                "unknown verb error bytes"
                "mira/1 error\ncode=bad-request\nmessage=unknown request verb \"bogus\"\n\n"
                payload
          | Error e ->
              Alcotest.failf "read: %s" (Serve.frame_error_to_string e));
          (* a bad request is an answer, not a desync: the connection
             lives on *)
          Serve.write_frame fd (Serve.encode_request Serve.Ping);
          match Serve.read_frame fd with
          | Ok payload ->
              Alcotest.(check string)
                "connection still serves" (golden "response.ok.ping") payload
          | Error e ->
              Alcotest.failf "read: %s" (Serve.frame_error_to_string e)))

let live_bad_request_tagged () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          Serve.write_frame fd "mira/1 bogus\nid=9\n\n";
          match Serve.read_frame fd with
          | Ok payload ->
              Alcotest.(check string)
                "tag echoed on a rejected verb"
                "mira/1 error\nid=9\ncode=bad-request\nmessage=unknown request verb \"bogus\"\n\n"
                payload
          | Error e ->
              Alcotest.failf "read: %s" (Serve.frame_error_to_string e)))

(* every frame-layer desync: pinned error bytes, then the connection is
   dropped (never resynchronized) *)
let desync_drops ~name ~send ~expect =
  with_server
    ~cfg:(fun c -> { c with Serve.cfg_max_frame_bytes = 1024 })
    (fun socket ->
      with_conn socket (fun fd ->
          send fd;
          (match Serve.read_frame fd with
          | Ok payload -> Alcotest.(check string) name expect payload
          | Error e ->
              Alcotest.failf "%s: read: %s" name
                (Serve.frame_error_to_string e));
          match Serve.read_frame fd with
          | Error Serve.Closed -> ()
          | Ok _ -> Alcotest.failf "%s: connection not dropped" name
          | Error e ->
              Alcotest.failf "%s: expected EOF, got %s" name
                (Serve.frame_error_to_string e)))

let live_bad_magic () =
  desync_drops ~name:"bad magic"
    ~send:(fun fd -> write_all fd (String.make 26 'X'))
    ~expect:"mira/1 error\ncode=bad-frame\nmessage=bad frame magic\n\n"

let live_bad_checksum () =
  desync_drops ~name:"checksum mismatch"
    ~send:(fun fd ->
      let raw = Bytes.of_string (golden "frame.request.ping") in
      Bytes.set raw header_len
        (Char.chr (Char.code (Bytes.get raw header_len) lxor 0xff));
      write_all fd (Bytes.to_string raw))
    ~expect:"mira/1 error\ncode=bad-frame\nmessage=frame checksum mismatch\n\n"

let live_oversized () =
  desync_drops ~name:"oversized declaration"
    ~send:(fun fd ->
      let b = Bytes.create 4 in
      Bytes.set_uint8 b 0 0;
      Bytes.set_uint8 b 1 0;
      Bytes.set_uint8 b 2 ((1025 lsr 8) land 0xff);
      Bytes.set_uint8 b 3 (1025 land 0xff);
      write_all fd (Serve.magic ^ Bytes.to_string b))
    ~expect:
      "mira/1 error\ncode=bad-frame\nmessage=oversized frame (1025 bytes declared)\n\n"

let live_truncated () =
  desync_drops ~name:"truncated frame"
    ~send:(fun fd ->
      let raw = golden "frame.request.ping" in
      write_all fd (String.sub raw 0 (String.length raw - 3));
      Unix.shutdown fd Unix.SHUTDOWN_SEND)
    ~expect:"mira/1 error\ncode=bad-frame\nmessage=truncated frame\n\n"

let live_overloaded () =
  with_server
    ~cfg:(fun c -> { c with Serve.cfg_max_inflight = 1 })
    (fun socket ->
      (* the readiness probe's connection may not have released its
         admission slot yet: retry until a round-trip proves this
         connection is the admitted one *)
      let rec admitted tries =
        let fd = Serve.connect socket in
        match Serve.roundtrip fd Serve.Ping with
        | Ok { Serve.rs_status = "ok"; _ } -> fd
        | _ when tries > 0 ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Unix.sleepf 0.02;
            admitted (tries - 1)
        | _ -> Alcotest.fail "could not get admitted"
      in
      let fd = admitted 100 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          with_conn socket (fun fd2 ->
              (match read_raw_frame fd2 with
              | None -> Alcotest.fail "no unsolicited overloaded frame"
              | Some raw ->
                  Alcotest.(check string)
                    "overloaded payload bytes"
                    (golden "response.overloaded")
                    (payload_of_raw raw));
              match read_exactly fd2 1 with
              | None -> ()
              | Some _ -> Alcotest.fail "shed connection not closed")))

(* error-taxonomy codes produced by real failing requests: the codes,
   and the diag fields riding with them, match PROTOCOL.md *)
let live_taxonomy () =
  let req fd r =
    Serve.write_frame fd (Serve.encode_request r);
    match Serve.read_frame fd with
    | Error e -> Alcotest.failf "read: %s" (Serve.frame_error_to_string e)
    | Ok payload -> (
        match Serve.parse_response payload with
        | Error m -> Alcotest.failf "parse: %s" m
        | Ok resp -> resp)
  in
  let check_code name (resp : Serve.response) code =
    Alcotest.(check string) (name ^ " status") "error" resp.rs_status;
    Alcotest.(check (option string))
      (name ^ " code") (Some code) (Serve.field resp "code");
    Alcotest.(check bool)
      (name ^ " has message") true
      (Serve.field resp "message" <> None);
    Alcotest.(check bool)
      (name ^ " has phase/kind") true
      (Serve.field resp "phase" <> None && Serve.field resp "kind" <> None)
  in
  with_server (fun socket ->
      with_conn socket (fun fd ->
          check_code "analysis"
            (req fd
               (Serve.Analyze
                  {
                    an_name = "broken.mc";
                    an_source = "int f(";
                    an_budget = Serve.no_budget;
                  }))
            "analysis";
          check_code "budget"
            (req fd
               (Serve.Analyze
                  {
                    an_name = "m.mc";
                    an_source = golden_source;
                    an_budget =
                      {
                        Serve.rq_fuel = Some 1;
                        rq_timeout_ms = None;
                        rq_depth = None;
                      };
                  }))
            "budget";
          (* a 0ms deadline needs enough work for the budget clock to
             look at the wall clock at all; the overrun may surface as
             timeout or budget depending on which limit trips first —
             the same family PROTOCOL.md groups them in *)
          let big_source =
            let b = Buffer.create 8192 in
            Buffer.add_string b "int f(int n) { int s = 0; ";
            for _ = 1 to 400 do
              Buffer.add_string b "s = s + n; "
            done;
            Buffer.add_string b "return s; }";
            Buffer.contents b
          in
          let resp =
            req fd
              (Serve.Analyze
                 {
                   an_name = "m2.mc";
                   an_source = big_source;
                   an_budget =
                     {
                       Serve.rq_fuel = None;
                       rq_timeout_ms = Some 0;
                       rq_depth = None;
                     };
                 })
          in
          Alcotest.(check string) "deadline status" "error" resp.rs_status;
          Alcotest.(check bool)
            "deadline overrun code" true
            (match Serve.field resp "code" with
            | Some ("timeout" | "budget") -> true
            | _ -> false)));
  with_server
    ~cfg:(fun c ->
      {
        c with
        Serve.cfg_faults =
          Some { Faults.none with Faults.seed; worker_p = 1.0 };
      })
    (fun socket ->
      with_conn socket (fun fd ->
          check_code "injected"
            (req fd
               (Serve.Analyze
                  {
                    an_name = "m.mc";
                    an_source = golden_source;
                    an_budget = Serve.no_budget;
                  }))
            "injected"))

(* the stats body: documented key order, proto/transport fields *)
let live_stats_shape () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          Serve.write_frame fd (Serve.encode_request Serve.Stats);
          match Serve.read_frame fd with
          | Error e -> Alcotest.failf "read: %s" (Serve.frame_error_to_string e)
          | Ok payload -> (
              match Serve.parse_response payload with
              | Error m -> Alcotest.failf "parse: %s" m
              | Ok resp ->
                  Alcotest.(check string) "status" "ok" resp.rs_status;
                  Alcotest.(check (option string))
                    "proto" (Some "mira/1") (Serve.field resp "proto");
                  Alcotest.(check (option string))
                    "transport" (Some "unix") (Serve.field resp "transport");
                  let keys =
                    String.split_on_char '\n' resp.rs_body
                    |> List.filter (fun l -> l <> "")
                    |> List.map (fun l ->
                           match String.index_opt l '=' with
                           | Some i -> String.sub l 0 i
                           | None -> Alcotest.failf "stats line %S" l)
                  in
                  Alcotest.(check (list string))
                    "stats body keys, in wire order"
                    [
                      "uptime-ms";
                      "served";
                      "failed";
                      "shed";
                      "protocol-errors";
                      "inflight";
                      "inflight-hwm";
                      "analyzed";
                      "mem-hits";
                      "disk-hits";
                      "assembled";
                      "fn-mem-hits";
                      "fn-disk-hits";
                      "fn-analyzed";
                      "cache-corrupt";
                      "io-retries";
                      "io-failures";
                    ]
                    keys)))

(* ---------- poller smoke ---------- *)

let poller_pipe () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let rd, wr = Poller.wait ~read:[ r ] ~write:[ w ] ~timeout_ms:0 () in
      Alcotest.(check bool) "empty pipe not readable" false (List.mem r rd);
      Alcotest.(check bool) "pipe writable" true (List.mem w wr);
      write_all w "!";
      let rd, _ = Poller.wait ~read:[ r ] ~timeout_ms:1000 () in
      Alcotest.(check bool) "now readable" true (List.mem r rd);
      let rd, wr = Poller.wait ~timeout_ms:0 () in
      Alcotest.(check bool) "no interests, no events" true (rd = [] && wr = []))

(* ---------- idle-connection scale ---------- *)

let thread_count () =
  let ic = open_in "/proc/self/status" in
  let rec go () =
    match input_line ic with
    | line ->
        if String.length line > 8 && String.sub line 0 8 = "Threads:" then begin
          close_in ic;
          int_of_string
            (String.trim (String.sub line 8 (String.length line - 8)))
        end
        else go ()
    | exception End_of_file ->
        close_in ic;
        -1
  in
  go ()

let idle_scale () =
  let target = 1000 in
  let rlimit = Poller.rlimit_nofile () in
  (* each in-process connection holds two descriptors (both ends live
     in this process); leave slack for the suite's own files *)
  if rlimit < (2 * target) + 256 then
    Printf.printf "idle-scale: skipped (RLIMIT_NOFILE %d < %d needed)\n%!"
      rlimit
      ((2 * target) + 256)
  else
    with_server
      ~cfg:(fun c ->
        {
          c with
          Serve.cfg_max_inflight = target + 16;
          cfg_idle_timeout_ms = 1_500;
        })
      (fun socket ->
        let threads_before = thread_count () in
        let rec connect_retry tries =
          match Serve.connect socket with
          | fd -> fd
          | exception Unix.Unix_error ((EAGAIN | ECONNREFUSED), _, _)
            when tries > 0 ->
              Unix.sleepf 0.005;
              connect_retry (tries - 1)
        in
        let conns = Array.init target (fun _ -> connect_retry 200) in
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              conns)
          (fun () ->
            (* a fresh connection is answered promptly with 1000
               connections already parked *)
            with_conn socket (fun fd ->
                match Serve.roundtrip fd Serve.Ping with
                | Ok r ->
                    Alcotest.(check string)
                      "responsive at 1000 idle" "ok" r.Serve.rs_status
                | Error m -> Alcotest.failf "ping under idle load: %s" m);
            (* connections cost descriptors, not threads *)
            let threads_during = thread_count () in
            Alcotest.(check bool)
              (Printf.sprintf "thread count flat (%d before, %d at %d idle)"
                 threads_before threads_during target)
              true
              (threads_during - threads_before <= 8);
            (* the idle timeout still reaps at scale: a parked
               connection sees EOF once cfg_idle_timeout_ms passes *)
            let fd0 = conns.(0) in
            Unix.setsockopt_float fd0 Unix.SO_RCVTIMEO 10.0;
            let buf = Bytes.create 1 in
            match Unix.read fd0 buf 0 1 with
            | 0 -> ()
            | _ -> Alcotest.fail "expected EOF from the idle reap"
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                Alcotest.fail "idle connection was never reaped"
            | exception Unix.Unix_error (ECONNRESET, _, _) -> ()))

(* ---------- pipelining fuzz ---------- *)

(* a tiny deterministic LCG: the interleavings replay from the same
   seed the fault schedule uses *)
let lcg seed =
  let state = ref (seed land 0x3fffffff) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod bound

let fuzz_requests rng n =
  List.init n (fun i ->
      let id = Printf.sprintf "f%d" i in
      match rng 5 with
      | 0 | 1 -> `Tagged (id, Serve.Ping)
      | 2 ->
          `Tagged
            ( id,
              Serve.Analyze
                {
                  an_name = "fuzz.mc";
                  an_source = golden_source;
                  an_budget = Serve.no_budget;
                } )
      | 3 -> `Untagged Serve.Ping
      | _ -> `Bad_verb id)

let send_fuzz fd items =
  (* a faulted server may drop the connection mid-stream; whatever was
     accepted is still subject to the response invariants *)
  let sent_tagged = ref [] and sent_untagged = ref 0 in
  (try
     List.iter
       (fun item ->
         match item with
         | `Tagged (id, req) ->
             Serve.write_frame fd (Serve.encode_request ~id req);
             sent_tagged := id :: !sent_tagged
         | `Untagged req ->
             Serve.write_frame fd (Serve.encode_request req);
             incr sent_untagged
         | `Bad_verb id ->
             (* unknown verb, but a well-formed payload: the daemon
                must still echo the tag on the bad-request error *)
             Serve.write_frame fd
               (Printf.sprintf "mira/1 bogus-verb\nid=%s\n\n" id);
             sent_tagged := id :: !sent_tagged)
       items
   with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ());
  (List.rev !sent_tagged, !sent_untagged)

let read_fuzz fd expected =
  let seen = Hashtbl.create 32 in
  let untagged = ref 0 in
  let broke = ref false in
  let rec go remaining =
    if remaining > 0 then
      match Serve.read_frame fd with
      | Error _ -> broke := true
      | Ok payload -> (
          match Serve.parse_response payload with
          | Error m -> Alcotest.failf "fuzz: unparseable response: %s" m
          | Ok resp -> (
              match Serve.field resp "id" with
              | Some id ->
                  if Hashtbl.mem seen id then
                    Alcotest.failf "fuzz: id %s answered twice" id;
                  Hashtbl.replace seen id ();
                  go (remaining - 1)
              | None ->
                  incr untagged;
                  go (remaining - 1)))
  in
  go expected;
  (seen, !untagged, !broke)

let fuzz_one_conn ~malformed rng socket =
  with_conn socket (fun fd ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      let items = fuzz_requests rng 24 in
      let tagged, untagged = send_fuzz fd items in
      (* optionally wreck the stream after the real requests: the
         server must answer what it accepted, then drop the rest *)
      if malformed then begin
        let raw = Bytes.of_string (frame_bytes "mira/1 ping\n\n") in
        Bytes.set raw header_len
          (Char.chr (Char.code (Bytes.get raw header_len) lxor 0xff));
        try write_all fd (Bytes.to_string raw)
        with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()
      end;
      let expected = List.length tagged + untagged in
      let seen, got_untagged, broke = read_fuzz fd expected in
      (* every answered id is one we sent, exactly once *)
      Hashtbl.iter
        (fun id () ->
          if not (List.mem id tagged) then
            Alcotest.failf "fuzz: response for unsent id %s" id)
        seen;
      if (not broke) && not malformed then begin
        Alcotest.(check int)
          "every tagged request answered exactly once" (List.length tagged)
          (Hashtbl.length seen);
        Alcotest.(check int) "every untagged request answered" untagged
          got_untagged
      end)

let pipeline_fuzz_clean () =
  with_server
    ~cfg:(fun c -> { c with Serve.cfg_max_pipeline = 4 })
    (fun socket ->
      let rng = lcg seed in
      for _ = 1 to 4 do
        fuzz_one_conn ~malformed:false rng socket
      done)

let pipeline_fuzz_faulty () =
  with_server
    ~cfg:(fun c ->
      {
        c with
        Serve.cfg_max_pipeline = 4;
        cfg_faults =
          Some
            {
              Faults.none with
              Faults.seed;
              worker_p = 0.1;
              slow_p = 0.2;
              slow_ms = 20;
              net_write_p = 0.05;
              disconnect_p = 0.05;
            };
      })
    (fun socket ->
      let rng = lcg (seed + 1) in
      for _ = 1 to 4 do
        fuzz_one_conn ~malformed:true rng socket
      done;
      (* whatever the fuzz did, the daemon is still standing *)
      with_conn socket (fun fd ->
          match Serve.roundtrip fd Serve.Ping with
          | Ok { rs_status = "ok"; _ } -> ()
          | Ok r -> Alcotest.failf "daemon unhealthy after fuzz: %s" r.rs_status
          | Error m -> Alcotest.failf "daemon gone after fuzz: %s" m))

(* ---------- accept and stop latency ---------- *)

let accept_latency () =
  with_server (fun socket ->
      (* acceptance is event-driven: on a quiet server the whole
         connect → ping → response exchange stays well under any
         polling tick *)
      let worst = ref 0.0 in
      for _ = 1 to 5 do
        let t0 = Unix.gettimeofday () in
        with_conn socket (fun fd ->
            match Serve.roundtrip fd Serve.Ping with
            | Ok { rs_status = "ok"; _ } -> ()
            | Ok r -> Alcotest.failf "ping answered %s" r.rs_status
            | Error m -> Alcotest.failf "ping failed: %s" m);
        let dt = Unix.gettimeofday () -. t0 in
        if dt > !worst then worst := dt
      done;
      Alcotest.(check bool)
        (Printf.sprintf "accept-to-response under 100ms (worst %.1f ms)"
           (!worst *. 1000.0))
        true (!worst < 0.1))

let stop_latency () =
  let socket = temp_name "mira-stoplat" ^ ".sock" in
  let server = Serve.create (Serve.default_config ~socket) in
  let th = Thread.create (fun () -> ignore (Serve.serve server)) () in
  Alcotest.(check bool)
    "daemon is up" true
    (Client.wait_ready (Endpoint.Unix_sock socket));
  let t0 = Unix.gettimeofday () in
  Serve.stop server;
  Thread.join th;
  let dt = Unix.gettimeofday () -. t0 in
  (try Sys.remove socket with Sys_error _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "stop pipe wakes the loop (%.1f ms)" (dt *. 1000.0))
    true (dt < 0.5)

(* ---------- runner ---------- *)

let () =
  if Sys.getenv_opt "MIRA_GOLDEN_GEN" <> None then begin
    List.iter
      (fun (k, v) -> Printf.printf "    (%S, %S);\n" k v)
      (current_goldens ());
    exit 0
  end;
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "protocol"
    [
      ( "golden",
        [
          t "codec bytes are pinned" check_goldens;
          t "frame layout matches PROTOCOL.md" check_frame_layout;
        ] );
      ( "live",
        [
          t "ping round-trips the pinned frame" live_ping_bytes;
          t "tagged ping echoes id first" live_tagged_ping;
          t "unknown verb: bad-request bytes, connection lives"
            live_bad_request;
          t "rejected verb still echoes its tag" live_bad_request_tagged;
          t "bad magic: bad-frame bytes, then drop" live_bad_magic;
          t "checksum mismatch: bad-frame bytes, then drop"
            live_bad_checksum;
          t "oversized declaration: bad-frame bytes, then drop"
            live_oversized;
          t "truncated frame: bad-frame bytes, then drop" live_truncated;
          t "overload shed: pinned overloaded bytes, then close"
            live_overloaded;
          t "error taxonomy codes from real failures" live_taxonomy;
          t "stats response shape and key order" live_stats_shape;
        ] );
      ( "scale",
        [
          t "1000 idle connections cost fds, not threads" idle_scale;
          t "pipelined ids answered exactly once (clean)"
            pipeline_fuzz_clean;
          t "pipelined ids never duplicated under faults"
            pipeline_fuzz_faulty;
        ] );
      ( "latency",
        [
          t "accept-to-response under 100ms" accept_latency;
          t "stop pipe wakes the loop promptly" stop_latency;
        ] );
      ("poller", [ t "pipe readiness" poller_pipe ]);
    ]
