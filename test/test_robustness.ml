(* Robustness guarantees over the malformed corpus (corpus/bad):
   - every bad source produces a structured Diag.t with the exact
     phase, kind and position locked down here — no crash path (in
     particular no Stack_overflow) escapes Batch;
   - 20k-deep nesting hits the recursion-depth budget, not the native
     stack;
   - the failure set and report are byte-identical at jobs=1 and
     jobs=4. *)

open Mira_core

let bad_dir =
  (* dune runtest runs in test/'s build dir; dune exec from the root *)
  let rel = Filename.concat "corpus" "bad" in
  if Sys.file_exists rel then rel else Filename.concat ".." rel

let bad_sources = Batch.sources_of_paths [ bad_dir ]

(* name, phase, kind, position (0,0 = none expected), message substring *)
let expected =
  [
    ("bad_annot_key.mc", Diag.Annotate, Diag.User_error, (0, 0),
     {|unknown annotation key "wibble"|});
    ("bad_annot_value.mc", Diag.Analysis, Diag.User_error, (0, 0),
     "malformed annotation value: n*+");
    ("bad_pragma.mc", Diag.Lex, Diag.User_error, (1, 13), "malformed pragma");
    ("deep_braces.mc", Diag.Analysis, Diag.Budget_exhausted, (0, 0),
     "recursion depth");
    ("deep_parens.mc", Diag.Analysis, Diag.Budget_exhausted, (0, 0),
     "recursion depth");
    ("dup_function.mc", Diag.Typecheck, Diag.User_error, (2, 1),
     "duplicate function f");
    ("int_overflow.mc", Diag.Lex, Diag.User_error, (2, 11),
     "integer literal 99999999999999999999 out of range");
    ("stray_char.mc", Diag.Lex, Diag.User_error, (2, 12),
     "unexpected character '@'");
    ("truncated.mc", Diag.Parse, Diag.User_error, (1, 9),
     {|expected type, found "{"|});
    ("unterminated_comment.mc", Diag.Lex, Diag.User_error, (5, 1),
     "unterminated comment");
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let phase_name = Diag.phase_to_string
let kind_name = Diag.kind_to_string

let check_diag name (diag : Diag.t) (phase, kind, (line, col), sub) =
  let open Alcotest in
  check string (name ^ " phase") (phase_name phase)
    (phase_name diag.d_phase);
  check string (name ^ " kind") (kind_name kind) (kind_name diag.d_kind);
  (match (line, Diag.primary_pos diag) with
  | 0, _ -> () (* position not locked for this case *)
  | _, None -> failf "%s: expected position %d:%d, diag has none" name line col
  | _, Some p ->
      check (pair int int) (name ^ " position") (line, col)
        (p.Mira_srclang.Loc.line, p.Mira_srclang.Loc.col));
  check bool
    (Printf.sprintf "%s message %S in %S" name sub diag.d_message)
    true
    (contains ~sub diag.d_message)

let robustness_tests =
  let open Alcotest in
  [
    test_case "bad corpus is present and complete" `Quick (fun () ->
        check (list string) "source names"
          (List.map (fun (n, _, _, _, _) -> n) expected)
          (List.map (fun s -> s.Batch.src_name) bad_sources));
    test_case "every bad source yields its exact diagnostic" `Quick (fun () ->
        let results, stats = Batch.run bad_sources in
        check int "all failed" (List.length expected) stats.st_failed;
        List.iter2
          (fun result (name, phase, kind, pos, sub) ->
            match result with
            | Ok (a : Batch.analysis) ->
                failf "%s: expected a diagnostic, analysis succeeded (%s)"
                  name a.a_name
            | Error (n, diag) ->
                check string (name ^ " slot") name n;
                check_diag name diag (phase, kind, pos, sub))
          results expected);
    test_case "deep nesting is a depth budget, not a crash" `Quick (fun () ->
        (* drive the analyzer directly (no Batch safety net): the
           depth budget must fire before the native stack would *)
        let deep =
          List.find (fun s -> s.Batch.src_name = "deep_parens.mc") bad_sources
        in
        (match Mira.analyze ~source_name:deep.src_name deep.Batch.src_text with
        | _ -> Alcotest.fail "deep nesting unexpectedly analyzed"
        | exception Mira_limits.Budget.Exhausted Mira_limits.Budget.Depth -> ()
        | exception Stack_overflow ->
            Alcotest.fail "Stack_overflow escaped the depth budget");
        (* the deep statement variant too *)
        let deep_b =
          List.find (fun s -> s.Batch.src_name = "deep_braces.mc") bad_sources
        in
        match Mira.analyze ~source_name:deep_b.src_name deep_b.Batch.src_text
        with
        | _ -> Alcotest.fail "deep nesting unexpectedly analyzed"
        | exception Mira_limits.Budget.Exhausted Mira_limits.Budget.Depth -> ()
        | exception Stack_overflow ->
            Alcotest.fail "Stack_overflow escaped the depth budget");
    test_case "bad-corpus reports byte-identical at jobs=1 and jobs=4" `Quick
      (fun () ->
        let r1, s1 = Batch.run ~jobs:1 bad_sources in
        let r4, s4 = Batch.run ~jobs:4 bad_sources in
        check string "reports" (Batch.report r1 s1) (Batch.report r4 s4));
    test_case "budget diagnostics count as budget in stats" `Quick (fun () ->
        let _, stats = Batch.run bad_sources in
        check int "st_budget" 2 stats.st_budget);
  ]

let () = Alcotest.run "robustness" [ ("bad-corpus", robustness_tests) ]
