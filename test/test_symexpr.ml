open Mira_symexpr

let ratio_tests =
  let open Alcotest in
  [
    test_case "normalization" `Quick (fun () ->
        let q = Ratio.make 6 (-4) in
        check int "num" (-3) (Ratio.num q);
        check int "den" 2 (Ratio.den q));
    test_case "zero denominator rejected" `Quick (fun () ->
        check_raises "div by zero" Division_by_zero (fun () ->
            ignore (Ratio.make 1 0)));
    test_case "arithmetic" `Quick (fun () ->
        let a = Ratio.make 1 2 and b = Ratio.make 1 3 in
        check bool "1/2+1/3=5/6" true
          (Ratio.equal (Ratio.add a b) (Ratio.make 5 6));
        check bool "1/2*1/3=1/6" true
          (Ratio.equal (Ratio.mul a b) (Ratio.make 1 6));
        check bool "1/2-1/3=1/6" true
          (Ratio.equal (Ratio.sub a b) (Ratio.make 1 6));
        check bool "(1/2)/(1/3)=3/2" true
          (Ratio.equal (Ratio.div a b) (Ratio.make 3 2)));
    test_case "floor and ceil" `Quick (fun () ->
        check int "floor 7/2" 3 (Ratio.floor (Ratio.make 7 2));
        check int "ceil 7/2" 4 (Ratio.ceil (Ratio.make 7 2));
        check int "floor -7/2" (-4) (Ratio.floor (Ratio.make (-7) 2));
        check int "ceil -7/2" (-3) (Ratio.ceil (Ratio.make (-7) 2));
        check int "floor 4" 4 (Ratio.floor (Ratio.of_int 4));
        check int "ceil -4" (-4) (Ratio.ceil (Ratio.of_int (-4))));
    test_case "pow" `Quick (fun () ->
        check bool "(2/3)^3" true
          (Ratio.equal (Ratio.pow (Ratio.make 2 3) 3) (Ratio.make 8 27));
        check bool "q^0 = 1" true
          (Ratio.equal (Ratio.pow (Ratio.make 5 7) 0) Ratio.one));
    test_case "compare is total order" `Quick (fun () ->
        check bool "1/3 < 1/2" true
          (Ratio.compare (Ratio.make 1 3) (Ratio.make 1 2) < 0);
        check bool "-1/2 < 1/3" true
          (Ratio.compare (Ratio.make (-1) 2) (Ratio.make 1 3) < 0));
  ]

let ratio_props =
  let gen =
    QCheck.map
      (fun (n, d) -> Ratio.make n (if d = 0 then 1 else d))
      QCheck.(pair (int_range (-1000) 1000) (int_range (-50) 50))
  in
  let gen = QCheck.set_print Ratio.to_string gen in
  [
    QCheck.Test.make ~name:"add commutative" ~count:200 (QCheck.pair gen gen)
      (fun (a, b) -> Ratio.equal (Ratio.add a b) (Ratio.add b a));
    QCheck.Test.make ~name:"mul distributes over add" ~count:200
      (QCheck.triple gen gen gen) (fun (a, b, c) ->
        Ratio.equal
          (Ratio.mul a (Ratio.add b c))
          (Ratio.add (Ratio.mul a b) (Ratio.mul a c)));
    QCheck.Test.make ~name:"floor <= value <= ceil" ~count:200 gen (fun q ->
        let f = Ratio.floor q and c = Ratio.ceil q in
        Ratio.compare (Ratio.of_int f) q <= 0
        && Ratio.compare q (Ratio.of_int c) <= 0
        && c - f <= 1);
    QCheck.Test.make ~name:"canonical form" ~count:200 gen (fun q ->
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        Ratio.den q > 0 && gcd (abs (Ratio.num q)) (Ratio.den q) <= 1);
  ]

let p_of_int = Poly.of_int
let x = Poly.var "x"
let y = Poly.var "y"

let poly_tests =
  let open Alcotest in
  [
    test_case "construction and equality" `Quick (fun () ->
        let a = Poly.add x y and b = Poly.add y x in
        check bool "x+y = y+x" true (Poly.equal a b);
        check bool "x+y <> x" false (Poly.equal a x));
    test_case "zero coefficients vanish" `Quick (fun () ->
        let p = Poly.sub (Poly.add x y) (Poly.add x y) in
        check bool "is zero" true (Poly.is_zero p));
    test_case "to_const" `Quick (fun () ->
        check bool "const 5" true
          (match Poly.to_const (p_of_int 5) with
          | Some c -> Ratio.equal c (Ratio.of_int 5)
          | None -> false);
        check bool "x not const" true (Poly.to_const x = None));
    test_case "degree" `Quick (fun () ->
        let p = Poly.add (Poly.mul x (Poly.mul x y)) y in
        check int "total degree" 3 (Poly.degree p);
        check int "degree in x" 2 (Poly.degree_in "x" p);
        check int "degree in y" 1 (Poly.degree_in "y" p);
        check int "degree in z" 0 (Poly.degree_in "z" p));
    test_case "vars" `Quick (fun () ->
        let p = Poly.add (Poly.mul x y) (p_of_int 3) in
        check (list string) "vars" [ "x"; "y" ] (Poly.vars p));
    test_case "subst" `Quick (fun () ->
        (* (x+1)^2 with x := y-1 gives y^2 *)
        let p = Poly.pow (Poly.add x Poly.one) 2 in
        let q = Poly.subst "x" (Poly.sub y Poly.one) p in
        check bool "y^2" true (Poly.equal q (Poly.pow y 2)));
    test_case "coeffs_in" `Quick (fun () ->
        (* 3x^2 + xy + 5 *)
        let p =
          Poly.sum
            [ Poly.scale (Ratio.of_int 3) (Poly.pow x 2); Poly.mul x y; p_of_int 5 ]
        in
        let cs = Poly.coeffs_in "x" p in
        check int "length" 3 (Array.length cs);
        check bool "c0" true (Poly.equal cs.(0) (p_of_int 5));
        check bool "c1" true (Poly.equal cs.(1) y);
        check bool "c2" true (Poly.equal cs.(2) (p_of_int 3)));
    test_case "eval" `Quick (fun () ->
        let p = Poly.add (Poly.mul x y) (p_of_int 1) in
        let v = Poly.eval (function
          | "x" -> Ratio.of_int 3
          | "y" -> Ratio.of_int 4
          | _ -> assert false) p
        in
        check bool "3*4+1" true (Ratio.equal v (Ratio.of_int 13)));
    test_case "pretty printing" `Quick (fun () ->
        let p = Poly.sub (Poly.scale (Ratio.of_int 2) (Poly.pow x 2)) y in
        check string "print" "2*x^2 - y" (Poly.to_string p));
    test_case "python rendering integer-valued" `Quick (fun () ->
        (* n(n+1)/2 renders with a common denominator and // *)
        let n = Poly.var "n" in
        let p = Poly.scale (Ratio.make 1 2) (Poly.mul n (Poly.add n Poly.one)) in
        let s = Poly.to_python p in
        check bool "has //2" true
          (String.length s > 3 && String.sub s (String.length s - 3) 3 = "//2"));
  ]

let poly_gen =
  (* Random polynomials in x, y with small integer coefficients. *)
  let open QCheck.Gen in
  let term =
    map3
      (fun c ex ey ->
        Poly.scale (Ratio.of_int c)
          (Poly.mul (Poly.pow x ex) (Poly.pow y ey)))
      (int_range (-5) 5) (int_range 0 3) (int_range 0 3)
  in
  map Poly.sum (list_size (int_range 0 5) term)

let poly_arb = QCheck.make ~print:Poly.to_string poly_gen

let poly_props =
  let eval_at a b p =
    Poly.eval
      (function "x" -> Ratio.of_int a | "y" -> Ratio.of_int b | _ -> assert false)
      p
  in
  [
    QCheck.Test.make ~name:"poly ring: eval homomorphism (add)" ~count:100
      (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
        Ratio.equal
          (eval_at 3 5 (Poly.add p q))
          (Ratio.add (eval_at 3 5 p) (eval_at 3 5 q)));
    QCheck.Test.make ~name:"poly ring: eval homomorphism (mul)" ~count:100
      (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
        Ratio.equal
          (eval_at 2 (-3) (Poly.mul p q))
          (Ratio.mul (eval_at 2 (-3) p) (eval_at 2 (-3) q)));
    QCheck.Test.make ~name:"subst then eval = eval extended" ~count:100
      poly_arb (fun p ->
        let q = Poly.subst "x" (Poly.add y Poly.one) p in
        Ratio.equal (eval_at 99 4 q)
          (eval_at 5 4 p)
        |> fun _ ->
        (* x := y+1 at y=4 means x=5; q must not mention x. *)
        Poly.degree_in "x" q = 0
        && Ratio.equal
             (Poly.eval
                (function "y" -> Ratio.of_int 4 | _ -> assert false)
                q)
             (eval_at 5 4 p));
  ]

let faulhaber_tests =
  let open Alcotest in
  let brute k n =
    let s = ref 0 in
    for i = 1 to n do
      s := !s + int_of_float (float_of_int i ** float_of_int k)
    done;
    !s
  in
  [
    test_case "bernoulli numbers" `Quick (fun () ->
        check bool "B0" true (Ratio.equal (Faulhaber.bernoulli 0) Ratio.one);
        check bool "B1 = 1/2 (plus convention)" true
          (Ratio.equal (Faulhaber.bernoulli 1) (Ratio.make 1 2));
        check bool "B2 = 1/6" true
          (Ratio.equal (Faulhaber.bernoulli 2) (Ratio.make 1 6));
        check bool "B3 = 0" true (Ratio.is_zero (Faulhaber.bernoulli 3));
        check bool "B4 = -1/30" true
          (Ratio.equal (Faulhaber.bernoulli 4) (Ratio.make (-1) 30)));
    test_case "power sums match brute force" `Quick (fun () ->
        for k = 0 to 5 do
          for n = 0 to 12 do
            let p = Faulhaber.power_sum k in
            let v =
              Poly.eval
                (function "n" -> Ratio.of_int n | _ -> assert false)
                p
            in
            check int
              (Printf.sprintf "S_%d(%d)" k n)
              (brute k n) (Ratio.to_int_exn v)
          done
        done);
    test_case "sum_range triangular" `Quick (fun () ->
        (* sum_{j=i+1}^{6} 1 = 6 - i, then summed over i elsewhere *)
        let i = Poly.var "i" in
        let s =
          Faulhaber.sum_range "j" ~lo:(Poly.add i Poly.one) ~hi:(p_of_int 6)
            Poly.one
        in
        check bool "6 - i" true (Poly.equal s (Poly.sub (p_of_int 6) i)));
    test_case "sum_range rejects bad bounds" `Quick (fun () ->
        check_raises "bound mentions var"
          (Invalid_argument
             "Faulhaber.sum_range: bounds mention the summation variable")
          (fun () -> ignore (Faulhaber.sum_range "j" ~lo:(Poly.var "j") ~hi:(p_of_int 3) Poly.one)));
  ]

let faulhaber_props =
  [
    QCheck.Test.make ~name:"sum_range equals brute force" ~count:200
      QCheck.(
        triple (int_range (-8) 8) (int_range (-8) 20)
          (pair (int_range 0 4) (int_range (-4) 4)))
      (fun (lo, span, (k, c)) ->
        let hi = lo + abs span in
        let p = Poly.scale (Ratio.of_int c) (Poly.pow x k) in
        let s = Faulhaber.sum_range "x" ~lo:(p_of_int lo) ~hi:(p_of_int hi) p in
        let brute = ref Ratio.zero in
        for i = lo to hi do
          brute :=
            Ratio.add !brute
              (Poly.eval
                 (function "x" -> Ratio.of_int i | _ -> assert false)
                 p)
        done;
        match Poly.to_const s with
        | Some v -> Ratio.equal v !brute
        | None -> false);
  ]

let expr_tests =
  let open Alcotest in
  let ev env e = Expr.eval_int (fun v -> List.assoc v env) e in
  [
    test_case "polynomial folding" `Quick (fun () ->
        let e = Expr.add (Expr.var "n") (Expr.of_int 2) in
        check bool "folds to poly" true (Expr.to_poly e <> None));
    test_case "max/min of constants fold" `Quick (fun () ->
        check bool "max" true
          (Expr.equal (Expr.max_ (Expr.of_int 3) (Expr.of_int 5)) (Expr.of_int 5));
        check bool "min" true
          (Expr.equal (Expr.min_ (Expr.of_int 3) (Expr.of_int 5)) (Expr.of_int 3)));
    test_case "fdiv/cdiv" `Quick (fun () ->
        check int "fdiv" 2 (ev [] (Expr.fdiv (Expr.of_int 7) 3));
        check int "cdiv" 3 (ev [] (Expr.cdiv (Expr.of_int 7) 3));
        check int "fdiv neg" (-3) (ev [] (Expr.fdiv (Expr.of_int (-7)) 3));
        check int "symbolic fdiv" 4
          (ev [ ("n", 13) ] (Expr.fdiv (Expr.var "n") 3)));
    test_case "clamp0" `Quick (fun () ->
        let e = Expr.clamp0 (Expr.sub (Expr.var "n") (Expr.of_int 5)) in
        check int "clamped" 0 (ev [ ("n", 3) ] e);
        check int "passes" 4 (ev [ ("n", 9) ] e));
    test_case "if guard" `Quick (fun () ->
        let g = Poly.sub (Poly.var "n") (p_of_int 10) in
        let e = Expr.if_ g (Expr.of_int 1) (Expr.of_int 2) in
        check int "n=10 true" 1 (ev [ ("n", 10) ] e);
        check int "n=9 false" 2 (ev [ ("n", 9) ] e));
    test_case "eval_float matches eval on ints" `Quick (fun () ->
        let e =
          Expr.add
            (Expr.mul (Expr.var "n") (Expr.var "m"))
            (Expr.max_ (Expr.var "n") (Expr.var "m"))
        in
        let i = ev [ ("n", 7); ("m", 4) ] e in
        let f =
          Expr.eval_float
            (function "n" -> 7.0 | "m" -> 4.0 | _ -> assert false)
            e
        in
        check (float 1e-9) "agree" (float_of_int i) f);
    test_case "python rendering" `Quick (fun () ->
        let e = Expr.max_ (Expr.var "n") (Expr.of_int 0) in
        check string "max" "max(n, 0)" (Expr.to_python e));
    test_case "vars" `Quick (fun () ->
        let e = Expr.if_ (Poly.var "p") (Expr.var "a") (Expr.var "b") in
        check (list string) "vars" [ "a"; "b"; "p" ] (Expr.vars e));
  ]

(* ---------- randomized algebraic identities (bulk suites) ----------

   The heavier property suites behind the symbolic layer: ring laws
   for Poly, Faulhaber power sums against brute-force summation, and
   Expr's simplifying smart constructors against a reference
   interpreter — ~1000 seeded cases each. *)

let poly_point_arb =
  QCheck.make
    ~print:(fun (p, (a, b)) ->
      Printf.sprintf "%s at x=%d, y=%d" (Poly.to_string p) a b)
    QCheck.Gen.(pair poly_gen (pair (int_range (-9) 9) (int_range (-9) 9)))

let eval_xy a b p =
  Poly.eval
    (function "x" -> Ratio.of_int a | "y" -> Ratio.of_int b | _ -> assert false)
    p

let poly_ring_props =
  let triple_arb =
    QCheck.make
      ~print:(fun ((p, q, r), _) ->
        String.concat " | " (List.map Poly.to_string [ p; q; r ]))
      QCheck.Gen.(
        pair (triple poly_gen poly_gen poly_gen)
          (pair (int_range (-9) 9) (int_range (-9) 9)))
  in
  let at (a, b) p = eval_xy a b p in
  [
    QCheck.Test.make ~name:"ring: add commutative" ~count:1000
      (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
        Poly.equal (Poly.add p q) (Poly.add q p));
    QCheck.Test.make ~name:"ring: mul commutative" ~count:1000
      (QCheck.pair poly_arb poly_arb) (fun (p, q) ->
        Poly.equal (Poly.mul p q) (Poly.mul q p));
    QCheck.Test.make ~name:"ring: add associative" ~count:1000 triple_arb
      (fun ((p, q, r), _) ->
        Poly.equal (Poly.add p (Poly.add q r)) (Poly.add (Poly.add p q) r));
    QCheck.Test.make ~name:"ring: mul associative" ~count:1000 triple_arb
      (fun ((p, q, r), _) ->
        Poly.equal (Poly.mul p (Poly.mul q r)) (Poly.mul (Poly.mul p q) r));
    QCheck.Test.make ~name:"ring: mul distributes over add" ~count:1000
      triple_arb (fun ((p, q, r), _) ->
        Poly.equal
          (Poly.mul p (Poly.add q r))
          (Poly.add (Poly.mul p q) (Poly.mul p r)));
    QCheck.Test.make ~name:"ring: identities and inverses" ~count:1000
      poly_arb (fun p ->
        Poly.equal (Poly.add p Poly.zero) p
        && Poly.equal (Poly.mul p Poly.one) p
        && Poly.is_zero (Poly.sub p p)
        && Poly.is_zero (Poly.mul p Poly.zero));
    QCheck.Test.make ~name:"ring laws hold under evaluation too" ~count:1000
      triple_arb (fun ((p, q, r), pt) ->
        Ratio.equal
          (at pt (Poly.mul p (Poly.add q r)))
          (Ratio.add (at pt (Poly.mul p q)) (at pt (Poly.mul p r))));
    QCheck.Test.make ~name:"pow n is repeated mul" ~count:1000
      (QCheck.pair poly_point_arb (QCheck.int_range 0 4))
      (fun ((p, (a, b)), n) ->
        let rec rep i acc = if i = 0 then acc else rep (i - 1) (Poly.mul acc p) in
        Ratio.equal (eval_xy a b (Poly.pow p n)) (eval_xy a b (rep n Poly.one)));
  ]

let faulhaber_bulk_props =
  let brute k n =
    (* integer i^k summed 1..n *)
    let pow_int i k =
      let rec go acc j = if j = 0 then acc else go (acc * i) (j - 1) in
      go 1 k
    in
    let s = ref 0 in
    for i = 1 to n do
      s := !s + pow_int i k
    done;
    !s
  in
  [
    QCheck.Test.make ~name:"power_sum k<=4 equals brute-force summation"
      ~count:1000
      QCheck.(pair (int_range 0 4) (int_range 0 80))
      (fun (k, n) ->
        let v =
          Poly.eval
            (function "n" -> Ratio.of_int n | _ -> assert false)
            (Faulhaber.power_sum k)
        in
        Ratio.to_int_exn v = brute k n);
    QCheck.Test.make ~name:"power_sum telescopes: S_k(n) - S_k(n-1) = n^k"
      ~count:1000
      QCheck.(pair (int_range 0 4) (int_range 1 80))
      (fun (k, n) ->
        brute k n - brute k (n - 1)
        = int_of_float (float_of_int n ** float_of_int k));
  ]

(* A reference interpreter for expression descriptions: [build] maps a
   description through Expr's simplifying smart constructors, [ref_eval]
   interprets the same description naively.  Agreement means
   simplify-then-eval = eval. *)
type expr_desc =
  | DConst of int
  | DVar of string
  | DAdd of expr_desc * expr_desc
  | DSub of expr_desc * expr_desc
  | DMul of expr_desc * expr_desc
  | DMax of expr_desc * expr_desc
  | DMin of expr_desc * expr_desc
  | DFdiv of expr_desc * int
  | DCdiv of expr_desc * int
  | DIf of (int * int * int) * expr_desc * expr_desc
      (* guard c0 + c1*x + c2*y >= 0 *)

let rec build = function
  | DConst c -> Expr.of_int c
  | DVar v -> Expr.var v
  | DAdd (a, b) -> Expr.add (build a) (build b)
  | DSub (a, b) -> Expr.sub (build a) (build b)
  | DMul (a, b) -> Expr.mul (build a) (build b)
  | DMax (a, b) -> Expr.max_ (build a) (build b)
  | DMin (a, b) -> Expr.min_ (build a) (build b)
  | DFdiv (a, n) -> Expr.fdiv (build a) n
  | DCdiv (a, n) -> Expr.cdiv (build a) n
  | DIf ((c0, c1, c2), a, b) ->
      let g =
        Poly.sum
          [
            p_of_int c0;
            Poly.scale (Ratio.of_int c1) x;
            Poly.scale (Ratio.of_int c2) y;
          ]
      in
      Expr.if_ g (build a) (build b)

let rec ref_eval vx vy = function
  | DConst c -> c
  | DVar "x" -> vx
  | DVar "y" -> vy
  | DVar _ -> assert false
  | DAdd (a, b) -> ref_eval vx vy a + ref_eval vx vy b
  | DSub (a, b) -> ref_eval vx vy a - ref_eval vx vy b
  | DMul (a, b) -> ref_eval vx vy a * ref_eval vx vy b
  | DMax (a, b) -> max (ref_eval vx vy a) (ref_eval vx vy b)
  | DMin (a, b) -> min (ref_eval vx vy a) (ref_eval vx vy b)
  | DFdiv (a, n) ->
      let v = ref_eval vx vy a in
      if v >= 0 then v / n else -((-v + n - 1) / n)
  | DCdiv (a, n) ->
      let v = ref_eval vx vy a in
      if v >= 0 then (v + n - 1) / n else -(-v / n)
  | DIf ((c0, c1, c2), a, b) ->
      if c0 + (c1 * vx) + (c2 * vy) >= 0 then ref_eval vx vy a
      else ref_eval vx vy b

let expr_desc_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun c -> DConst c) (int_range (-8) 8);
        oneofl [ DVar "x"; DVar "y" ];
      ]
  in
  let coef = int_range (-3) 3 in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        frequency
          [
            (1, leaf);
            (2, map2 (fun a b -> DAdd (a, b)) sub sub);
            (2, map2 (fun a b -> DSub (a, b)) sub sub);
            (2, map2 (fun a b -> DMul (a, b)) sub sub);
            (1, map2 (fun a b -> DMax (a, b)) sub sub);
            (1, map2 (fun a b -> DMin (a, b)) sub sub);
            (1, map2 (fun a n -> DFdiv (a, n)) sub (int_range 1 5));
            (1, map2 (fun a n -> DCdiv (a, n)) sub (int_range 1 5));
            ( 1,
              map3
                (fun g a b -> DIf (g, a, b))
                (triple coef coef coef) sub sub );
          ])
    3

let rec desc_to_string = function
  | DConst c -> string_of_int c
  | DVar v -> v
  | DAdd (a, b) -> Printf.sprintf "(%s + %s)" (desc_to_string a) (desc_to_string b)
  | DSub (a, b) -> Printf.sprintf "(%s - %s)" (desc_to_string a) (desc_to_string b)
  | DMul (a, b) -> Printf.sprintf "(%s * %s)" (desc_to_string a) (desc_to_string b)
  | DMax (a, b) -> Printf.sprintf "max(%s, %s)" (desc_to_string a) (desc_to_string b)
  | DMin (a, b) -> Printf.sprintf "min(%s, %s)" (desc_to_string a) (desc_to_string b)
  | DFdiv (a, n) -> Printf.sprintf "floor(%s / %d)" (desc_to_string a) n
  | DCdiv (a, n) -> Printf.sprintf "ceil(%s / %d)" (desc_to_string a) n
  | DIf ((c0, c1, c2), a, b) ->
      Printf.sprintf "if(%d+%d*x+%d*y >= 0, %s, %s)" c0 c1 c2
        (desc_to_string a) (desc_to_string b)

let expr_simplify_props =
  let arb =
    QCheck.make
      ~print:(fun (d, (vx, vy)) ->
        Printf.sprintf "%s at x=%d, y=%d" (desc_to_string d) vx vy)
      QCheck.Gen.(
        pair expr_desc_gen (pair (int_range (-12) 12) (int_range (-12) 12)))
  in
  [
    QCheck.Test.make ~name:"smart constructors: simplify-then-eval = eval"
      ~count:1000 arb (fun (d, (vx, vy)) ->
        let e = build d in
        let env = function "x" -> vx | "y" -> vy | _ -> assert false in
        Expr.eval_int env e = ref_eval vx vy d);
    QCheck.Test.make ~name:"eval_float agrees with eval_int after building"
      ~count:1000 arb (fun (d, (vx, vy)) ->
        let e = build d in
        let fenv = function
          | "x" -> float_of_int vx
          | "y" -> float_of_int vy
          | _ -> assert false
        in
        Float.abs
          (Expr.eval_float fenv e -. float_of_int (ref_eval vx vy d))
        < 1e-6);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "symexpr"
    [
      ("ratio", ratio_tests);
      ("ratio-props", q ratio_props);
      ("poly", poly_tests);
      ("poly-props", q poly_props);
      ("poly-ring-props", q poly_ring_props);
      ("faulhaber", faulhaber_tests);
      ("faulhaber-props", q faulhaber_props);
      ("faulhaber-bulk-props", q faulhaber_bulk_props);
      ("expr", expr_tests);
      ("expr-simplify-props", q expr_simplify_props);
    ]
