(* Shared random-kernel generator for the differential fuzz oracle
   (test_differential) and the incremental-reanalysis property test
   (test_incremental): seeded random mini-C programs drawn from the
   statically analyzable fragment — nested for loops with affine
   dependent bounds, ifs in loop bodies, helper calls, int and double
   arrays.

   Programs are built as a small structural IR so a failing case can
   be shrunk structurally by the caller; [render] turns a kernel into
   source.  The two fixed helper functions render before [kern], so
   kernel-body edits never shift the helpers' line numbers — exactly
   the shape the per-function incremental cache is designed for. *)

(* ---------- program IR ---------- *)

type cond =
  | Cmp of string * string * string (* var, op, affine rhs rendered *)
  | Mod of string * int * bool (* var, modulus, equal-zero? *)

type stmt =
  | Dstmt of string (* statement over doubles a/b and scalar s *)
  | Istmt of string (* statement over int array p and scalar t *)
  | Callstmt of string (* helper-call statement *)
  | Ifblk of cond * stmt list

type node = Loop of loop | Body of stmt list
and loop = { lvar : string; llo : string; lhi : string; lbody : node list }

type kernel = { nodes : node list }

(* ---------- rendering ---------- *)

let render_cond = function
  | Cmp (v, op, rhs) -> Printf.sprintf "%s %s %s" v op rhs
  | Mod (v, m, eq) ->
      Printf.sprintf "%s %% %d %s 0" v m (if eq then "==" else "!=")

let rec render_stmt buf indent = function
  | Dstmt s | Istmt s | Callstmt s ->
      Buffer.add_string buf (indent ^ s ^ "\n")
  | Ifblk (c, body) ->
      Buffer.add_string buf
        (Printf.sprintf "%sif (%s) {\n" indent (render_cond c));
      List.iter (render_stmt buf (indent ^ "  ")) body;
      Buffer.add_string buf (indent ^ "}\n")

let rec render_node buf indent = function
  | Body stmts -> List.iter (render_stmt buf indent) stmts
  | Loop l ->
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = %s; %s <= %s; %s++) {\n" indent
           l.lvar l.llo l.lvar l.lhi l.lvar);
      List.iter (render_node buf (indent ^ "  ")) l.lbody;
      Buffer.add_string buf (indent ^ "}\n")

let helpers =
  "double dhelper(double x, double y) {\n\
  \  return x * 0.5 + y;\n\
   }\n\n\
   int ihelper(int *q, int k, int m) {\n\
  \  int acc = 0;\n\
  \  for (int w = 0; w < m; w++) {\n\
  \    acc += q[k + w];\n\
  \  }\n\
  \  return acc;\n\
   }\n\n"

let render k =
  let buf = Buffer.create 512 in
  Buffer.add_string buf helpers;
  Buffer.add_string buf
    "void kern(double *a, double *b, int *p, int n) {\n\
    \  double s = 0.0;\n\
    \  int t = 0;\n";
  List.iter (render_node buf "  ") k.nodes;
  Buffer.add_string buf "  a[0] = s + t;\n  p[0] = t;\n}\n";
  Buffer.contents buf

(* ---------- generation ---------- *)

(* All loop variables are >= 0 by construction (lower bounds are 0, an
   outer variable, or a nonnegative constant) and ranges are non-empty
   as written, which is the paper's counting convention. *)
let gen_loop rng depth_idx outers =
  let lvar = Printf.sprintf "i%d" depth_idx in
  match Random.State.int rng 3 with
  | 0 -> { lvar; llo = "0"; lhi = "n - 1"; lbody = [] }
  | 1 ->
      (* affine dependent bounds: base off an outer variable *)
      let base =
        match outers with
        | [] -> "0"
        | vs -> List.nth vs (Random.State.int rng (List.length vs))
      in
      let span = Random.State.int rng 6 in
      {
        lvar;
        llo = base;
        lhi = Printf.sprintf "%s + %d" base span;
        lbody = [];
      }
  | _ ->
      let lo = Random.State.int rng 4 in
      let hi = lo + 1 + Random.State.int rng 7 in
      { lvar; llo = string_of_int lo; lhi = string_of_int hi; lbody = [] }

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let gen_index rng vars =
  let v = pick rng vars in
  match Random.State.int rng 3 with
  | 0 -> v
  | 1 -> Printf.sprintf "%s + %d" v (1 + Random.State.int rng 3)
  | _ -> (
      match vars with
      | [ _ ] -> v
      | _ -> Printf.sprintf "%s + %s" v (pick rng vars))

let gen_stmt rng vars =
  let idx () = gen_index rng vars in
  let v () = pick rng vars in
  match Random.State.int rng 9 with
  | 0 -> Dstmt (Printf.sprintf "s += a[%s] * 1.5;" (idx ()))
  | 1 -> Dstmt (Printf.sprintf "a[%s] = b[%s] + s;" (idx ()) (idx ()))
  | 2 ->
      Dstmt
        (Printf.sprintf "b[%s] = a[%s] - 2.0 * b[%s];" (idx ()) (idx ())
           (idx ()))
  | 3 -> Istmt (Printf.sprintf "p[%s] = p[%s] + %d;" (idx ()) (idx ())
                  (1 + Random.State.int rng 4))
  | 4 -> Istmt (Printf.sprintf "t += p[%s] + %s;" (idx ()) (v ()))
  | 5 -> Istmt "t++;"
  | 6 ->
      Callstmt
        (Printf.sprintf "s += dhelper(a[%s], b[%s]);" (idx ()) (idx ()))
  | 7 ->
      Callstmt
        (Printf.sprintf "t += ihelper(p, %s, %d);" (v ())
           (1 + Random.State.int rng 4))
  | _ -> Dstmt (Printf.sprintf "s = s + b[%s] / 4.0;" (idx ()))

let gen_cond rng vars =
  let v () = pick rng vars in
  match Random.State.int rng 4 with
  | 0 -> Cmp (v (), ">", string_of_int (Random.State.int rng 6))
  | 1 ->
      let rhs =
        match vars with
        | [ _ ] -> string_of_int (Random.State.int rng 8)
        | _ -> Printf.sprintf "%s + %d" (v ()) (Random.State.int rng 3)
      in
      Cmp (v (), "<=", rhs)
  | 2 -> Mod (v (), 2 + Random.State.int rng 3, true)
  | _ -> Mod (v (), 2 + Random.State.int rng 3, false)

let gen_body rng vars =
  let stmts = ref [] in
  if Random.State.int rng 3 = 0 then begin
    let inner = [ gen_stmt rng vars ] in
    stmts := [ Ifblk (gen_cond rng vars, inner) ]
  end;
  for _ = 1 to 1 + Random.State.int rng 2 do
    stmts := gen_stmt rng vars :: !stmts
  done;
  Body !stmts

let rec gen_nest rng depth idx outers =
  if idx = depth then gen_body rng (List.rev outers)
  else
    let l = gen_loop rng idx outers in
    Loop { l with lbody = [ gen_nest rng depth (idx + 1) (l.lvar :: outers) ] }

let gen_kernel rng =
  let n_nests = 1 + Random.State.int rng 2 in
  let nodes =
    List.init n_nests (fun _ ->
        let depth = 1 + Random.State.int rng 3 in
        gen_nest rng depth 0 [])
  in
  { nodes }
