(* Fault-injection harness: under any deterministic fault schedule a
   batch run must
   - terminate and never raise;
   - report a structured diagnostic for every affected source;
   - produce byte-identical output for unaffected sources at any
     --jobs value (the schedule is a pure function of
     (seed, site, subject), so the affected set cannot depend on
     worker scheduling).

   The seed is pinned by MIRA_FAULT_SEED (default 20260806) so CI runs
   one reproducible schedule; set the variable to sweep others. *)

open Mira_core

let seed =
  match Sys.getenv_opt "MIRA_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "MIRA_FAULT_SEED must be an integer")
  | None -> 20260806

let faults ?(read = 0.0) ?(write = 0.0) ?(rename = 0.0) ?(corrupt = 0.0)
    ?(worker = 0.0) ?(slow = 0.0) ?(slow_ms = 0) ?(net_write = 0.0)
    ?(disconnect = 0.0) () =
  {
    Faults.seed;
    read_p = read;
    write_p = write;
    rename_p = rename;
    corrupt_p = corrupt;
    worker_p = worker;
    slow_p = slow;
    slow_ms;
    net_write_p = net_write;
    disconnect_p = disconnect;
    kill_p = 0.0;
  }

let corpus_sources =
  List.map
    (fun (name, text) -> { Batch.src_name = name; src_text = text })
    Mira_corpus.Corpus.all

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mira-faults-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* name -> Ok python | Error (diag rendering), for comparing runs *)
let outcomes results =
  List.map
    (function
      | Ok (a : Batch.analysis) -> (a.a_name, Ok a.a_python)
      | Error (name, diag) -> (name, Error (Diag.to_string diag)))
    results

let fault_tests =
  let open Alcotest in
  [
    test_case "worker faults: affected set is jobs-independent" `Quick
      (fun () ->
        let f = faults ~worker:0.4 () in
        let r1, s1 = Batch.run ~jobs:1 ~faults:f corpus_sources in
        let r4, s4 = Batch.run ~jobs:4 ~faults:f corpus_sources in
        check string "full reports byte-identical"
          (Batch.report r1 s1) (Batch.report r4 s4);
        (* at p=0.4 over 16 sources the seeded schedule should hit
           some and spare some; if a chosen seed ever degenerates the
           check below localizes it *)
        check bool "some source affected" true (s1.st_injected > 0);
        check bool "some source unaffected" true
          (s1.st_injected < s1.st_total);
        (* unaffected sources are byte-identical to a faultless run *)
        let clean = outcomes (fst (Batch.run corpus_sources)) in
        List.iter2
          (fun (name, out) (name', clean_out) ->
            check string "slot order" name name';
            match out with
            | Error _ -> ()
            | Ok py -> (
                match clean_out with
                | Ok clean_py ->
                    check string (name ^ " python unchanged") clean_py py
                | Error e ->
                    failf "%s: clean run failed unexpectedly: %s" name e))
          (outcomes r1) clean);
    test_case "injected worker faults are Injected_fault diagnostics" `Quick
      (fun () ->
        let f = faults ~worker:1.0 () in
        let results, stats = Batch.run ~faults:f corpus_sources in
        check int "every source affected" stats.st_total stats.st_injected;
        List.iter
          (function
            | Ok (a : Batch.analysis) ->
                failf "%s: expected injected failure" a.a_name
            | Error (_, diag) ->
                check string "kind" "injected fault"
                  (Diag.kind_to_string diag.Diag.d_kind))
          results);
    test_case "corrupt disk entries: detected, re-analyzed, identical" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let clean =
              outcomes (fst (Batch.run corpus_sources))
            in
            (* populate the disk tier *)
            let c0 = Batch.create_cache ~dir () in
            let _, s0 = Batch.run ~cache:c0 corpus_sources in
            check int "populated" (List.length corpus_sources) s0.st_analyzed;
            (* a fresh cache value (empty memory tier, same directory);
               entries are garbled only after it is open, so the
               startup recovery scan sees them clean and the read path
               must detect the corruption, degrade to misses, and
               reproduce the clean outputs *)
            let c1 = Batch.create_cache ~dir () in
            Array.iter
              (fun f ->
                let path = Filename.concat dir f in
                let oc = open_out path in
                output_string oc "not a cache entry";
                close_out oc)
              (Sys.readdir dir);
            let r1, s1 = Batch.run ~cache:c1 corpus_sources in
            check bool "corruption detected" true (s1.st_cache_corrupt > 0);
            check int "no disk hits" 0 s1.st_disk_hits;
            check int "all re-analyzed" (List.length corpus_sources)
              s1.st_analyzed;
            check bool "outputs identical to clean run" true
              (outcomes r1 = clean)));
    test_case "corrupting writer: entries quarantined at startup, reads miss"
      `Quick (fun () ->
        with_temp_dir (fun dir ->
            let f = faults ~corrupt:1.0 () in
            let c0 = Batch.create_cache ~dir () in
            let r0, s0 = Batch.run ~cache:c0 ~faults:f corpus_sources in
            check int "batch still succeeds" 0 s0.st_failed;
            (* every published entry is garbage: the startup recovery
               scan quarantines them all, so a fresh cache value never
               even has to trust them *)
            let rc = Batch.recover_dir dir in
            check bool "torn entries quarantined" true
              (rc.Batch.rc_quarantined > 0);
            check int "every scanned entry was torn" rc.Batch.rc_scanned
              rc.Batch.rc_quarantined;
            let c1 = Batch.create_cache ~dir () in
            let r1, s1 = Batch.run ~cache:c1 corpus_sources in
            check int "no disk hits" 0 s1.st_disk_hits;
            check int "all re-analyzed" (List.length corpus_sources)
              s1.st_analyzed;
            check bool "outputs identical" true (outcomes r0 = outcomes r1)));
    test_case "failed renames: nothing published, run unaffected" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let f = faults ~rename:1.0 () in
            let c0 = Batch.create_cache ~dir () in
            let clean = outcomes (fst (Batch.run corpus_sources)) in
            let r0, s0 = Batch.run ~cache:c0 ~faults:f corpus_sources in
            check int "batch still succeeds" 0 s0.st_failed;
            check bool "rename failures counted" true (s0.st_io_failures > 0);
            check bool "outputs identical to clean run" true
              (outcomes r0 = clean);
            (* only the advisory lock file may remain — no entries, no
               temporaries *)
            check (list string) "no entries or temporaries left behind" []
              (Array.to_list (Sys.readdir dir)
              |> List.filter (fun f -> f <> Batch.lock_file_name));
            (* second run over the same dir finds nothing to reuse *)
            let c1 = Batch.create_cache ~dir () in
            let _, s1 = Batch.run ~cache:c1 corpus_sources in
            check int "no disk hits" 0 s1.st_disk_hits;
            check int "all re-analyzed" (List.length corpus_sources)
              s1.st_analyzed));
    test_case "transient read errors are retried" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let c0 = Batch.create_cache ~dir () in
            let _ = Batch.run ~cache:c0 corpus_sources in
            (* read=0.5: for most keys some attempt in the retry
               budget succeeds (subjects include the attempt number,
               so retries re-roll) *)
            let f = faults ~read:0.5 () in
            let c1 = Batch.create_cache ~dir () in
            let r1, s1 = Batch.run ~cache:c1 ~faults:f corpus_sources in
            check int "batch still succeeds" 0 s1.st_failed;
            check bool "retries happened" true (s1.st_io_retries > 0);
            check bool "some disk hits survive the fault schedule" true
              (s1.st_disk_hits > 0);
            let clean = outcomes (fst (Batch.run corpus_sources)) in
            check bool "outputs identical to clean run" true
              (outcomes r1 = clean)));
    test_case "persistent read errors degrade to misses" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let c0 = Batch.create_cache ~dir () in
            let _ = Batch.run ~cache:c0 corpus_sources in
            let f = faults ~read:1.0 () in
            let c1 = Batch.create_cache ~dir () in
            let r1, s1 = Batch.run ~cache:c1 ~faults:f corpus_sources in
            check int "batch still succeeds" 0 s1.st_failed;
            check int "no disk hits" 0 s1.st_disk_hits;
            check bool "failures counted" true (s1.st_io_failures > 0);
            check int "all re-analyzed" (List.length corpus_sources)
              s1.st_analyzed;
            let clean = outcomes (fst (Batch.run corpus_sources)) in
            check bool "outputs identical to clean run" true
              (outcomes r1 = clean)));
    test_case "slow workers terminate and change nothing" `Quick (fun () ->
        let f = faults ~slow:1.0 ~slow_ms:2 () in
        let r, s = Batch.run ~jobs:4 ~faults:f corpus_sources in
        check int "no failures" 0 s.st_failed;
        let clean = outcomes (fst (Batch.run corpus_sources)) in
        check bool "outputs identical to clean run" true
          (outcomes r = clean));
    test_case "tiny fuel: every failure is a budget diagnostic" `Quick
      (fun () ->
        let limits = { Limits.default with fuel = Some 10 } in
        let results, stats = Batch.run ~limits corpus_sources in
        check int "all failed" stats.st_total stats.st_failed;
        check int "all budget" stats.st_total stats.st_budget;
        List.iter
          (function
            | Ok (a : Batch.analysis) -> failf "%s: expected failure" a.a_name
            | Error (_, diag) ->
                check string "kind" "budget exhausted"
                  (Diag.kind_to_string diag.Diag.d_kind))
          results);
    test_case "timeout_ms=0: every failure is a timeout" `Quick (fun () ->
        let limits = { Limits.default with timeout_ms = Some 0 } in
        let results, stats = Batch.run ~limits corpus_sources in
        check int "all failed" stats.st_total stats.st_failed;
        check int "all budget-family" stats.st_total stats.st_budget;
        List.iter
          (function
            | Ok (a : Batch.analysis) -> failf "%s: expected timeout" a.a_name
            | Error (_, diag) ->
                check string "kind" "timeout"
                  (Diag.kind_to_string diag.Diag.d_kind))
          results);
    test_case "fault specs parse and round-trip" `Quick (fun () ->
        (match
           Faults.parse
             "seed=42,read=0.25,worker=0.1,slow=1,slow_ms=7,net_write=0.5,disconnect=0.3"
         with
        | Error m -> failf "parse failed: %s" m
        | Ok f ->
            check int "seed" 42 f.Faults.seed;
            check (float 1e-9) "read" 0.25 f.read_p;
            check int "slow_ms" 7 f.slow_ms;
            check (float 1e-9) "net_write" 0.5 f.net_write_p;
            check (float 1e-9) "disconnect" 0.3 f.disconnect_p;
            match Faults.parse (Faults.to_string f) with
            | Error m -> failf "round-trip failed: %s" m
            | Ok f' -> check bool "round-trips" true (f = f'));
        (match Faults.parse "read=1.5" with
        | Ok _ -> fail "out-of-range probability accepted"
        | Error _ -> ());
        (match Faults.parse "bogus=1" with
        | Ok _ -> fail "unknown key accepted"
        | Error _ -> ());
        match Faults.parse "" with
        | Ok _ -> fail "empty spec accepted"
        | Error _ -> ());
    test_case "decisions are pure in (seed, site, subject)" `Quick (fun () ->
        let f = faults ~worker:0.5 () in
        let roll1 = Faults.roll f ~site:"worker" ~subject:"x.mc" in
        let roll2 = Faults.roll f ~site:"worker" ~subject:"x.mc" in
        check (float 0.0) "same inputs, same roll" roll1 roll2;
        check bool "in [0,1)" true (roll1 >= 0.0 && roll1 < 1.0);
        let other = Faults.roll { f with seed = f.seed + 1 }
            ~site:"worker" ~subject:"x.mc" in
        check bool "seed changes the roll" true (roll1 <> other));
  ]

let () = Alcotest.run "faults" [ ("fault-injection", fault_tests) ]
