(* Function-granular incremental reanalysis guarantees:
   - editing one function of an N-function source re-analyzes only
     that function (asserted via the Batch.stats function-tier
     counters) and the assembled output is byte-identical to a cold
     whole-file analysis;
   - a formatting-only edit (no line shifts, no AST change) is pure
     cache work: 100% function-tier hits, zero re-analyses;
   - the property holds for random kernels from Kernelgen (the
     differential fuzzer's generator) at jobs=1 and jobs=4;
   - the function tier's disk entries survive a fresh in-memory cache;
   - gc_disk evicts down to the cap and a gutted cache stays correct. *)

open Mira_core

(* Four functions; [mk_src] splices a constant into f2's body, so
   substituting a different literal edits exactly one function body
   without shifting any line. *)
let mk_src mult =
  {|int f1(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc += i;
  }
  return acc;
}

double f2(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += a[i] * |} ^ mult
  ^ {|;
  }
  return s;
}

double f3(double *a, double *b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += a[i] * b[i];
  }
  return s;
}

int f4(int *p, int n) {
  int t = 0;
  for (int i = 0; i < n; i++) {
    t += p[i];
  }
  return t;
}
|}
let nfuncs = 4

let python_of = function
  | Ok (a : Batch.analysis) -> a.a_python
  | Error (name, diag) -> name ^ ": " ^ Diag.to_string diag

let warnings_of = function
  | Ok (a : Batch.analysis) -> a.a_warnings
  | Error _ -> []

let strip_stats_lines report =
  (* "batch:"-prefixed trailing lines reflect cache tiers and are the
     one place incremental and cold runs may legitimately differ *)
  String.concat "\n"
    (List.filter
       (fun l -> not (String.length l >= 6 && String.sub l 0 6 = "batch:"))
       (String.split_on_char '\n' report))

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mira-incr-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let cache_files dir suffix =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f suffix)

let incremental_tests =
  let open Alcotest in
  [
    test_case "editing one function re-analyzes only that function" `Quick
      (fun () ->
        let cache = Batch.create_cache () in
        let _, s0 = Mira.analyze_batch ~cache [ ("prog.mc", mk_src "2.0") ] in
        check int "cold run is one whole-file analysis" 1 s0.Batch.st_analyzed;
        check int "cold run re-analyzes no function in isolation" 0
          s0.Batch.st_fn_analyzed;
        let results, s1 =
          Mira.analyze_batch ~cache [ ("prog.mc", mk_src "3.0") ]
        in
        check int "edited run assembles from the function tier" 1
          s1.Batch.st_assembled;
        check int "edited run runs no whole-file analysis" 0
          s1.Batch.st_analyzed;
        check int "only the edited function is re-analyzed" 1
          s1.Batch.st_fn_analyzed;
        check int "the other functions hit the memory tier" (nfuncs - 1)
          s1.Batch.st_fn_mem_hits;
        check bool "a real edit is not flagged cached" false
          (match results with [ Ok a ] -> a.Batch.a_cached | _ -> true);
        (* byte-identity with a cold whole-file analysis of the edit *)
        let cold_results, cold_stats =
          Mira.analyze_batch [ ("prog.mc", mk_src "3.0") ]
        in
        check bool "python byte-identical to cold" true
          (String.equal
             (String.concat "\x00" (List.map python_of results))
             (String.concat "\x00" (List.map python_of cold_results)));
        check bool "warnings identical to cold" true
          (List.map warnings_of results = List.map warnings_of cold_results);
        check bool "report identical to cold modulo stats lines" true
          (String.equal
             (strip_stats_lines (Batch.report results s1))
             (strip_stats_lines (Batch.report cold_results cold_stats))));
    test_case "formatting-only edit is 100% function-tier hits" `Quick
      (fun () ->
        let cache = Batch.create_cache () in
        let src = mk_src "2.0" in
        let seeded, _ = Mira.analyze_batch ~cache [ ("prog.mc", src) ] in
        (* trailing blank lines change the file-tier key but shift no
           token line, so every function digest is unchanged *)
        let formatted = src ^ "\n\n" in
        check bool "the file-tier key does change" false
          (String.equal
             (Batch.key ~level:Mira_codegen.Codegen.O1 src)
             (Batch.key ~level:Mira_codegen.Codegen.O1 formatted));
        let results, s =
          Mira.analyze_batch ~cache [ ("prog.mc", formatted) ]
        in
        check int "assembled" 1 s.Batch.st_assembled;
        check int "no function re-analyzed" 0 s.Batch.st_fn_analyzed;
        check int "every function hits" nfuncs s.Batch.st_fn_mem_hits;
        check bool "pure cache work is flagged cached" true
          (match results with [ Ok a ] -> a.Batch.a_cached | _ -> false);
        check bool "python identical to the seeded run" true
          (String.equal
             (String.concat "\x00" (List.map python_of seeded))
             (String.concat "\x00" (List.map python_of results))));
    test_case "random single-kernel edits: incremental = cold, jobs 1" `Quick
      (fun () ->
        let rng = Random.State.make [| 9182 |] in
        for _trial = 1 to 8 do
          let src1 = Kernelgen.render (Kernelgen.gen_kernel rng) in
          let src2 = Kernelgen.render (Kernelgen.gen_kernel rng) in
          let cold, _ = Mira.analyze_batch [ ("kern.mc", src2) ] in
          let cache = Batch.create_cache () in
          ignore (Mira.analyze_batch ~cache [ ("kern.mc", src1) ]);
          let inc, s = Mira.analyze_batch ~cache [ ("kern.mc", src2) ] in
          check bool "python identical" true
            (String.equal
               (String.concat "\x00" (List.map python_of cold))
               (String.concat "\x00" (List.map python_of inc)));
          check bool "warnings identical" true
            (List.map warnings_of cold = List.map warnings_of inc);
          if not (String.equal src1 src2) then begin
            (* only kern's body differs; dhelper and ihelper render
               first, on unchanged lines, so both must hit *)
            check int "helpers hit the function tier" 2
              s.Batch.st_fn_mem_hits;
            check int "only kern is re-analyzed" 1 s.Batch.st_fn_analyzed
          end
        done);
    test_case "random single-kernel edits: incremental = cold, jobs 4" `Quick
      (fun () ->
        let rng = Random.State.make [| 7341 |] in
        let pairs =
          List.init 4 (fun i ->
              ( Printf.sprintf "kern%d.mc" i,
                Kernelgen.render (Kernelgen.gen_kernel rng),
                Kernelgen.render (Kernelgen.gen_kernel rng) ))
        in
        let cold, _ =
          Mira.analyze_batch ~jobs:4
            (List.map (fun (n, _, s2) -> (n, s2)) pairs)
        in
        let cache = Batch.create_cache () in
        ignore
          (Mira.analyze_batch ~jobs:4 ~cache
             (List.map (fun (n, s1, _) -> (n, s1)) pairs));
        let inc, _ =
          Mira.analyze_batch ~jobs:4 ~cache
            (List.map (fun (n, _, s2) -> (n, s2)) pairs)
        in
        check bool "python identical across the batch" true
          (String.equal
             (String.concat "\x00" (List.map python_of cold))
             (String.concat "\x00" (List.map python_of inc))));
    test_case "function disk tier survives a fresh memory cache" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let c1 = Batch.create_cache ~dir () in
            ignore (Mira.analyze_batch ~cache:c1 [ ("prog.mc", mk_src "2.0") ]);
            check bool "function entries were published" true
              (List.length (cache_files dir ".fnmodel") = nfuncs);
            (* new cache value = empty memory tiers, same directory *)
            let c2 = Batch.create_cache ~dir () in
            let results, s =
              Mira.analyze_batch ~cache:c2 [ ("prog.mc", mk_src "3.0") ]
            in
            check int "assembled" 1 s.Batch.st_assembled;
            check int "unchanged functions come off disk" (nfuncs - 1)
              s.Batch.st_fn_disk_hits;
            check int "only the edit is re-analyzed" 1 s.Batch.st_fn_analyzed;
            let cold, _ = Mira.analyze_batch [ ("prog.mc", mk_src "3.0") ] in
            check bool "python identical to cold" true
              (String.equal
                 (String.concat "\x00" (List.map python_of results))
                 (String.concat "\x00" (List.map python_of cold)))));
    test_case "gc_disk evicts to the cap; a gutted cache stays correct"
      `Quick (fun () ->
        with_temp_dir (fun dir ->
            let c = Batch.create_cache ~dir () in
            let reference, _ =
              Mira.analyze_batch ~cache:c [ ("prog.mc", mk_src "2.0") ]
            in
            let entries () =
              List.length (cache_files dir ".model")
              + List.length (cache_files dir ".fnmodel")
            in
            let published = entries () in
            check bool "entries were published" true (published > 0);
            (* far under the cap: nothing to do *)
            let removed, freed =
              Batch.gc_disk ~max_bytes:(64 * 1024 * 1024) c
            in
            check int "no eviction under the cap (removed)" 0 removed;
            check int "no eviction under the cap (freed)" 0 freed;
            check int "entries untouched" published (entries ());
            (* cap of one byte: everything must go *)
            let removed, freed = Batch.gc_disk ~max_bytes:1 c in
            check int "every entry evicted" published removed;
            check bool "bytes freed" true (freed > 0);
            check int "directory holds no entries" 0 (entries ());
            (* a fresh cache over the gutted directory just misses *)
            let c2 = Batch.create_cache ~dir () in
            let results, s =
              Mira.analyze_batch ~cache:c2 [ ("prog.mc", mk_src "2.0") ]
            in
            check int "re-analyzed from scratch" 1 s.Batch.st_analyzed;
            check bool "output unchanged after eviction" true
              (String.equal
                 (String.concat "\x00" (List.map python_of reference))
                 (String.concat "\x00" (List.map python_of results)))));
    test_case "incremental off falls back to whole-file analysis" `Quick
      (fun () ->
        let cache = Batch.create_cache () in
        ignore (Mira.analyze_batch ~cache [ ("prog.mc", mk_src "2.0") ]);
        let results, s =
          Mira.analyze_batch ~cache ~incremental:false
            [ ("prog.mc", mk_src "3.0") ]
        in
        check int "whole file re-analyzed" 1 s.Batch.st_analyzed;
        check int "nothing assembled" 0 s.Batch.st_assembled;
        check int "function tier untouched" 0
          (s.Batch.st_fn_mem_hits + s.Batch.st_fn_disk_hits
         + s.Batch.st_fn_analyzed);
        let cold, _ = Mira.analyze_batch [ ("prog.mc", mk_src "3.0") ] in
        check bool "python identical to cold" true
          (String.equal
             (String.concat "\x00" (List.map python_of results))
             (String.concat "\x00" (List.map python_of cold))));
  ]

let () =
  Random.self_init ();
  Alcotest.run "incremental" [ ("incremental", incremental_tests) ]
