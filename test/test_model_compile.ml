(* Compiled evaluation differential suite.

   Model_compile partially evaluates a model into a register program;
   Model_eval (the tree-walking interpreter) is its oracle.  The two
   reassociate float arithmetic differently (Horner vs monomial-order
   summation), so equality is checked to relative tolerance — while
   integer-exact paths (call bindings, floor steps) must agree
   exactly by construction.

   Covered here:
   - corpus differential: every corpus function, compiled over its
     full parameter set and over random sweep/fixed splits, matches
     eval / eval_exclusive / eval_split;
   - randomized differential over test/kernelgen.ml programs (seeded
     by MIRA_FUZZ_SEED like the fuzz oracle);
   - Missing_parameter raised identically (same function, parameter)
     by the compiled and interpreted paths;
   - graceful Not_compilable fallback (recursive model) instead of
     divergence;
   - the program cache: hit/miss accounting, invalidation on model
     digest and arch change, the checksummed disk tier (round-trip,
     corrupt-entry degradation), negative caching of uncompilable
     models;
   - the daemon: eval served through the compile cache, with
     compile-hits/compile-misses surfaced in stats (satellite of the
     serve suite; test_serve.ml itself is unchanged). *)

open Mira_core
module Corpus = Mira_corpus.Corpus

let fuzz_seed =
  match Sys.getenv_opt "MIRA_FUZZ_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "MIRA_FUZZ_SEED must be an integer")
  | None -> 20260806

let tol = 1e-6

let check_close what a b =
  let bound = tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  if Float.abs (a -. b) > bound then
    Alcotest.failf "%s: compiled %.17g <> interpreted %.17g" what a b

let check_counts what compiled interpreted =
  Alcotest.(check (list string))
    (what ^ ": mnemonic sets")
    (List.map fst interpreted) (List.map fst compiled);
  List.iter2
    (fun (mn, c) (_, i) -> check_close (what ^ " " ^ mn) c i)
    compiled interpreted

(* Compare every mode of the compiled path against the interpreter for
   one (model, fname, sweep, fixed) configuration.  Returns false when
   the model is not compilable under this sweep set (callers may
   assert on the fallback rate). *)
let differential what model ~fname ~sweep ~fixed ~env =
  match
    Model_compile.compile model ~fname ~sweep ~fixed
  with
  | exception Model_compile.Not_compilable _ -> false
  | prog ->
      let interp = Model_eval.eval model ~fname ~env in
      let comp = Model_compile.eval prog ~env in
      check_counts (what ^ " [incl]") comp interp;
      let out = Model_compile.run (Model_compile.runner prog)
          (Array.map
             (fun p -> List.assoc p env)
             (Model_compile.params prog))
      in
      check_close (what ^ " fpi") (Model_compile.fpi prog out)
        (Model_eval.fpi interp);
      check_close (what ^ " total") (Model_compile.total prog out)
        (Model_eval.total interp);
      (match
         Model_compile.compile model ~mode:Model_compile.Exclusive ~fname
           ~sweep ~fixed
       with
      | exception Model_compile.Not_compilable _ -> ()
      | xprog ->
          check_counts (what ^ " [excl]")
            (Model_compile.eval xprog ~env)
            (Model_eval.eval_exclusive model ~fname ~env));
      (match
         Model_compile.compile model ~mode:Model_compile.Split ~fname ~sweep
           ~fixed
       with
      | exception Model_compile.Not_compilable _ -> ()
      | sprog ->
          let comp2 = Model_compile.eval_split sprog ~env in
          let interp2 = Model_eval.eval_split model ~fname ~env in
          Alcotest.(check (list string))
            (what ^ " [split]: mnemonic sets")
            (List.map fst interp2) (List.map fst comp2);
          List.iter2
            (fun (mn, (cs, cp)) (_, (is_, ip)) ->
              check_close (what ^ " [split s] " ^ mn) cs is_;
              check_close (what ^ " [split p] " ^ mn) cp ip)
            comp2 interp2);
      true

(* ---------- corpus differential ---------- *)

let corpus_env_values = [ 4; 7; 12 ]

let test_corpus_differential () =
  let rng = Random.State.make [| fuzz_seed; 17 |] in
  let compiled = ref 0 and fallback = ref 0 in
  List.iter
    (fun (name, src) ->
      let model = (Mira.analyze ~source_name:name src).model in
      List.iter
        (fun (fm : Model_ir.fmodel) ->
          let fname = fm.mf_name in
          let params = fm.mf_params in
          List.iteri
            (fun i base ->
              let env =
                List.mapi (fun j p -> (p, base + (j * 3))) params
              in
              let what = Printf.sprintf "%s/%s#%d" name fname i in
              (* all parameters swept *)
              let ok =
                differential what model ~fname ~sweep:params ~fixed:[] ~env
              in
              if ok then incr compiled else incr fallback;
              (* random sweep/fixed split: fixed params fold away *)
              let sweep, fixed_names =
                List.partition (fun _ -> Random.State.bool rng) params
              in
              ignore
                (differential (what ^ " split-env") model ~fname ~sweep
                   ~fixed:
                     (List.map
                        (fun p -> (p, List.assoc p env))
                        fixed_names)
                   ~env))
            corpus_env_values)
        model.functions)
    Corpus.all;
  Alcotest.(check bool)
    (Printf.sprintf
       "most corpus functions compile (compiled %d, fallback %d)"
       !compiled !fallback)
    true
    (!compiled > 10 * max 1 !fallback)

(* ---------- randomized kernels ---------- *)

let test_random_kernels () =
  let rng = Random.State.make [| fuzz_seed; 23 |] in
  for i = 1 to 25 do
    let kernel = Kernelgen.gen_kernel rng in
    let src = Kernelgen.render kernel in
    let model = (Mira.analyze ~source_name:"fuzz.mc" src).model in
    List.iter
      (fun (fm : Model_ir.fmodel) ->
        let fname = fm.mf_name in
        let params = fm.mf_params in
        for j = 1 to 3 do
          let env =
            List.map (fun p -> (p, 2 + Random.State.int rng 11)) params
          in
          let what = Printf.sprintf "kernel#%d/%s env#%d" i fname j in
          ignore
            (differential what model ~fname ~sweep:params ~fixed:[] ~env);
          let sweep, fixed_names =
            List.partition (fun _ -> Random.State.bool rng) params
          in
          ignore
            (differential (what ^ " mixed") model ~fname ~sweep
               ~fixed:(List.map (fun p -> (p, List.assoc p env)) fixed_names)
               ~env)
        done)
      model.functions
  done

(* ---------- error parity ---------- *)

let missing_parameter_of f =
  match f () with
  | _ -> Alcotest.fail "expected Missing_parameter"
  | exception Model_eval.Missing_parameter (fn, p) -> (fn, p)

let test_missing_parameter_parity () =
  let model =
    (Mira.analyze ~source_name:"stream.mc" Corpus.stream).model
  in
  let fname = "stream_triad" in
  let interp =
    missing_parameter_of (fun () ->
        Model_eval.eval model ~fname ~env:[ ("bogus", 1) ])
  in
  let comp =
    missing_parameter_of (fun () ->
        Model_compile.compile model ~fname ~sweep:[ "bogus" ] ~fixed:[])
  in
  Alcotest.(check (pair string string))
    "compile raises the same (function, parameter)" interp comp;
  (* and at binding time: a program over [n] evaluated without [n] *)
  let prog = Model_compile.compile model ~fname ~sweep:[ "n" ] ~fixed:[] in
  let at_eval =
    missing_parameter_of (fun () -> Model_compile.eval prog ~env:[])
  in
  Alcotest.(check (pair string string))
    "run-time env misses raise identically" (fname, "n") at_eval;
  (* unknown functions: same Invalid_argument message *)
  let invalid f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument m -> m
  in
  Alcotest.(check string)
    "unknown function message matches eval"
    (invalid (fun () -> Model_eval.eval model ~fname:"nope" ~env:[]))
    (invalid (fun () ->
         Model_compile.compile model ~fname:"nope" ~sweep:[] ~fixed:[]))

(* ---------- fallback on uncompilable models ---------- *)

let recursive_model =
  let open Model_ir in
  {
    functions =
      [
        {
          mf_name = "loopy";
          mf_source_params = [ "n" ];
          mf_arity = 1;
          mf_class = None;
          mf_params = [ "n" ];
          mf_entries =
            [
              Update
                {
                  line = 1;
                  label = "self";
                  counts = [ ("addsd", 1) ];
                  mult = mult_one;
                };
              Call_site
                {
                  line = 2;
                  callee = "loopy";
                  bindings = [];
                  mult = mult_one;
                };
            ];
          mf_warnings = [];
          mf_update_py = [ Some ""; None ];
        };
      ];
    source_name = "rec.mc";
  }

let test_not_compilable_fallback () =
  (match
     Model_compile.compile recursive_model ~fname:"loopy" ~sweep:[ "n" ]
       ~fixed:[]
   with
  | _ -> Alcotest.fail "recursive model must not compile"
  | exception Model_compile.Not_compilable _ -> ());
  (* the cache answers Error (and counts a fallback) instead of raising *)
  let c = Model_compile.create_cache () in
  let r =
    Model_compile.get c ~digest:"d0" ~model:recursive_model ~fname:"loopy"
      ~sweep:[ "n" ] ~fixed:[] ()
  in
  (match r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error from cache get");
  let r2 =
    Model_compile.get c ~digest:"d0" ~model:recursive_model ~fname:"loopy"
      ~sweep:[ "n" ] ~fixed:[] ()
  in
  (match r2 with Error _ -> () | Ok _ -> Alcotest.fail "negative cache");
  let s = Model_compile.stats c in
  Alcotest.(check int) "two fallbacks counted" 2 s.Model_compile.fallbacks;
  Alcotest.(check int) "no misses" 0 s.Model_compile.misses

(* ---------- cache accounting and invalidation ---------- *)

let stream_model =
  lazy (Mira.analyze ~source_name:"stream.mc" Corpus.stream).model

let get_stream c ~digest ?arch () =
  Model_compile.get c ~digest ?arch ~model:(Lazy.force stream_model)
    ~fname:"stream_triad" ~sweep:[ "n" ] ~fixed:[] ()

let ok_exn = function
  | Ok p -> p
  | Error m -> Alcotest.failf "unexpected fallback: %s" m

let test_cache_accounting () =
  let c = Model_compile.create_cache () in
  let p1 = ok_exn (get_stream c ~digest:"da" ()) in
  let p2 = ok_exn (get_stream c ~digest:"da" ()) in
  Alcotest.(check bool) "second get is the same program" true (p1 == p2);
  let s = Model_compile.stats c in
  Alcotest.(check int) "one miss" 1 s.Model_compile.misses;
  Alcotest.(check int) "one hit" 1 s.Model_compile.hits;
  (* model digest change invalidates *)
  ignore (ok_exn (get_stream c ~digest:"db" ()));
  Alcotest.(check int) "digest change recompiles" 2
    (Model_compile.stats c).Model_compile.misses;
  (* arch change invalidates (costs are folded into the program) *)
  ignore (ok_exn (get_stream c ~digest:"da" ~arch:Mira_arch.Archdesc.arya ()));
  ignore
    (ok_exn
       (get_stream c ~digest:"da" ~arch:Mira_arch.Archdesc.frankenstein ()));
  Alcotest.(check int) "each arch compiles its own program" 4
    (Model_compile.stats c).Model_compile.misses

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mira-prog-cache-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir d 0o755;
    d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let test_cache_disk_tier () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c1 = Model_compile.create_cache ~dir () in
      let p1 = ok_exn (get_stream c1 ~digest:"da" ()) in
      (* a fresh cache over the same directory loads from disk *)
      let c2 = Model_compile.create_cache ~dir () in
      let p2 = ok_exn (get_stream c2 ~digest:"da" ()) in
      let s2 = Model_compile.stats c2 in
      Alcotest.(check int) "disk hit" 1 s2.Model_compile.disk_hits;
      Alcotest.(check int) "no recompilation" 0 s2.Model_compile.misses;
      Alcotest.(check (list string))
        "disk round-trip preserves the program"
        (Array.to_list (Model_compile.mnemonics p1))
        (Array.to_list (Model_compile.mnemonics p2));
      let env = [ ("n", 1000) ] in
      check_counts "disk-loaded program evaluates identically"
        (Model_compile.eval p2 ~env)
        (Model_compile.eval p1 ~env);
      (* corrupt every entry: a third cache must degrade to a clean
         recompile, never crash *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".prog" then begin
            let path = Filename.concat dir f in
            let oc = open_out_bin path in
            output_string oc "garbage";
            close_out oc
          end)
        (Sys.readdir dir);
      let c3 = Model_compile.create_cache ~dir () in
      ignore (ok_exn (get_stream c3 ~digest:"da" ()));
      let s3 = Model_compile.stats c3 in
      Alcotest.(check int) "corrupt entry degrades to a miss" 1
        s3.Model_compile.misses;
      Alcotest.(check int) "corrupt entry is not a disk hit" 0
        s3.Model_compile.disk_hits)

(* ---------- the daemon: compiled eval + stats counters ---------- *)

let temp_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

let with_server f =
  let socket = temp_name "mira-compile-serve" ^ ".sock" in
  let config = Serve.default_config ~socket in
  let server = Serve.create config in
  let th = Thread.create (fun () -> ignore (Serve.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "daemon is up" true (Serve.wait_ready socket);
      f socket)

let request socket req =
  let fd = Serve.connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Serve.roundtrip fd req with
      | Ok r -> r
      | Error m -> Alcotest.failf "roundtrip failed: %s" m)

(* the compile counters ride as response header fields so the stats
   body key list (pinned wire shape) is untouched *)
let stats_field r key =
  match Serve.field r key with
  | Some v -> v
  | None -> Alcotest.failf "stats response lacks field %s" key

let eval_req ?(n = 1000) () =
  Serve.Eval
    {
      ev_name = "stream.mc";
      ev_source = Corpus.stream;
      ev_function = "stream_triad";
      ev_params = [ ("n", n) ];
      ev_budget = Serve.no_budget;
    }

let test_serve_compile_counters () =
  with_server (fun socket ->
      let r1 = request socket (eval_req ()) in
      Alcotest.(check string) "first eval ok" "ok" r1.Serve.rs_status;
      (* the served numbers are the compiled path's; pin them to the
         library interpreter *)
      let model =
        (Mira.analyze ~source_name:"stream.mc" Corpus.stream).model
      in
      let interp =
        Model_eval.eval model ~fname:"stream_triad" ~env:[ ("n", 1000) ]
      in
      (match Serve.field r1 "fpi" with
      | None -> Alcotest.fail "eval response lacks fpi"
      | Some fpi ->
          check_close "served fpi matches interpreter"
            (float_of_string fpi) (Model_eval.fpi interp));
      let r2 = request socket (eval_req ()) in
      Alcotest.(check string) "second eval ok" "ok" r2.Serve.rs_status;
      let r3 = request socket (eval_req ~n:2000 ()) in
      Alcotest.(check string) "third eval ok" "ok" r3.Serve.rs_status;
      let st = request socket Serve.Stats in
      Alcotest.(check string) "stats ok" "ok" st.Serve.rs_status;
      (* one shape compiled once; the second and third evals (same
         sweep shape, different binding) reuse it *)
      Alcotest.(check string)
        "compile-misses" "1" (stats_field st "compile-misses");
      Alcotest.(check string)
        "compile-hits" "2" (stats_field st "compile-hits"))

let () =
  Alcotest.run "model-compile"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus: compiled = interpreted" `Quick
            test_corpus_differential;
          Alcotest.test_case "random kernels: compiled = interpreted" `Quick
            test_random_kernels;
          Alcotest.test_case "Missing_parameter parity" `Quick
            test_missing_parameter_parity;
          Alcotest.test_case "uncompilable models fall back" `Quick
            test_not_compilable_fallback;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting and invalidation" `Quick
            test_cache_accounting;
          Alcotest.test_case "checksummed disk tier" `Quick
            test_cache_disk_tier;
        ] );
      ( "serve",
        [
          Alcotest.test_case "eval verbs surface compile counters" `Quick
            test_serve_compile_counters;
        ] );
    ]
