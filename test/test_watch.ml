(* Watch mode: long-lived incremental sessions, exercised in the
   Goblint incremental-test layout — each case pins a source tree, a
   patch, and the exact expected invalidation set, and asserts BOTH
   the re-analysis counters (nothing beyond the set was recomputed)
   AND byte-identity (every warm model equals a cold whole-file
   analysis of the same text).  Cases cover the three cross-file
   invalidation channels the index tracks (signature, annotation,
   class), the within-file channels (body-only edit, added and deleted
   functions, clean edit), session lifecycle (forget, unwatched paths,
   a broken edit keeping the last good model), and the daemon wire
   surface (watch/reanalyze/forget verbs, streamed binding frames,
   session counters on stats). *)

open Mira_core

let level = Mira_codegen.Codegen.O1
let limits = Limits.default

(* ------------------------------------------------------------------ *)
(* The source trees                                                    *)
(* ------------------------------------------------------------------ *)

(* a.mc exports sig:g, sig:f and ann:g; f calls g *)
let a0 =
  "double g(double *a, int n) {\n\
  \  double s = 0.0;\n\
  \  #pragma @Annotation {iters:27}\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s = s + a[i];\n\
  \  }\n\
  \  return s;\n\
   }\n\n\
   double f(double *a, int n) {\n\
  \  double t = g(a, n);\n\
  \  return t + 1.0;\n\
   }\n"

(* the signature patch: g grows a parameter (f's call site updated) *)
let a_sig =
  "double g(double *a, int n, int reps) {\n\
  \  double s = 0.0;\n\
  \  #pragma @Annotation {iters:27}\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s = s + a[i];\n\
  \  }\n\
  \  return s;\n\
   }\n\n\
   double f(double *a, int n) {\n\
  \  double t = g(a, n, 1);\n\
  \  return t + 1.0;\n\
   }\n"

(* the annotation patch: only g's @Annotation payload changes *)
let a_ann =
  "double g(double *a, int n) {\n\
  \  double s = 0.0;\n\
  \  #pragma @Annotation {iters:28}\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s = s + a[i];\n\
  \  }\n\
  \  return s;\n\
   }\n\n\
   double f(double *a, int n) {\n\
  \  double t = g(a, n);\n\
  \  return t + 1.0;\n\
   }\n"

(* the body-only patch: a constant inside f changes; no interface key
   moves and g's fingerprint is untouched *)
let a_body =
  "double g(double *a, int n) {\n\
  \  double s = 0.0;\n\
  \  #pragma @Annotation {iters:27}\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s = s + a[i];\n\
  \  }\n\
  \  return s;\n\
   }\n\n\
   double f(double *a, int n) {\n\
  \  double t = g(a, n);\n\
  \  return t + 2.0;\n\
   }\n"

(* the deletion patch: f is gone (removing sig:f shifts every
   remaining function's context, so g re-fingerprints as edited) *)
let a_del =
  "double g(double *a, int n) {\n\
  \  double s = 0.0;\n\
  \  #pragma @Annotation {iters:27}\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s = s + a[i];\n\
  \  }\n\
  \  return s;\n\
   }\n"

(* b.mc defines its OWN g (each watched file typechecks standalone);
   the name-based conservative index still reaches h through sig:g /
   ann:g when a.mc's g changes *)
let b0 =
  "double g(double *a, int n) {\n\
  \  double s = 0.0;\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    s = s + 2.0 * a[i];\n\
  \  }\n\
  \  return s;\n\
   }\n\n\
   double h(double *a, int n) {\n\
  \  return g(a, n) * 0.5;\n\
   }\n"

(* c.mc shares no names with a.mc/b.mc: the control file *)
let c0 =
  "int c_only(int n) {\n\
  \  int acc = 0;\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    acc = acc + 3;\n\
  \  }\n\
  \  return acc;\n\
   }\n"

let c_add =
  c0 ^ "\nint k(int n) {\n  return n + 7;\n}\n"

(* d.mc / e.mc both define class stencil; editing d's field list must
   reach e's class users through class:stencil *)
let class_src mul =
  Printf.sprintf
    "class stencil {\n\
    \  int width;\n\
    \  void apply(double *x, double *y, int n) {\n\
    \    for (int i = 0; i < n; i++) {\n\
    \      y[i] = x[i] * %s;\n\
    \    }\n\
    \  }\n\
     };\n\n\
     void run_%s(double *x, double *y, int n) {\n\
    \  stencil s;\n\
    \  s.apply(x, y, n);\n\
     }\n"
    mul

let d0 = class_src "2.0" "d"
let e0 = class_src "3.0" "e"

let d_field =
  "class stencil {\n\
  \  int width;\n\
  \  int height;\n\
  \  void apply(double *x, double *y, int n) {\n\
  \    for (int i = 0; i < n; i++) {\n\
  \      y[i] = x[i] * 2.0;\n\
  \    }\n\
  \  }\n\
   };\n\n\
   void run_d(double *x, double *y, int n) {\n\
  \  stencil s;\n\
  \  s.apply(x, y, n);\n\
   }\n"

let tree0 = [ ("a.mc", a0); ("b.mc", b0); ("c.mc", c0) ]

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

(* the cold oracle every warm model is held to *)
let cold_python path text =
  match
    Batch.run ~jobs:1 ~incremental:false ~level ~limits
      [ { Batch.src_name = path; src_text = text } ]
  with
  | [ Ok a ], _ -> a.Batch.a_python
  | [ Error (_, d) ], _ ->
      Alcotest.failf "cold analysis of %s failed: %s" path (Diag.to_string d)
  | _ -> Alcotest.fail "cold analysis returned an unexpected shape"

let watch_tree sources =
  let s = Session.create ~level ~limits () in
  List.iter
    (fun (p, text) ->
      match Session.watch s ~path:p text with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "watch %s failed: %s" p (Diag.to_string d))
    sources;
  s

let reanalyze_exn s ~path text =
  match Session.reanalyze s ~path text with
  | Ok upd -> upd
  | Error d ->
      Alcotest.failf "reanalyze %s failed: %s" path (Diag.to_string d)

let inval_set (upd : Session.update) =
  List.sort compare
    (List.map
       (fun iv ->
         Printf.sprintf "%s %s %s" iv.Session.iv_file iv.Session.iv_func
           (Session.reason_to_string iv.Session.iv_reason))
       upd.Session.up_invalidated)

let check_invals name expected upd =
  Alcotest.(check (list string)) name (List.sort compare expected)
    (inval_set upd)

(* every watched file's warm model — not just the touched ones — must
   equal a cold analysis of its current text *)
let check_byte_identity s =
  List.iter
    (fun path ->
      let info = Option.get (Session.lookup s ~path) in
      let text = Option.get (Session.source s ~path) in
      Alcotest.(check string)
        (path ^ ": warm model is byte-identical to cold")
        (cold_python path text) info.Session.in_python)
    (Session.paths s)

let counters_list (c : Session.counters) =
  [
    c.Session.ct_files;
    c.Session.ct_reanalyses;
    c.Session.ct_invalidated;
    c.Session.ct_local;
    c.Session.ct_cross;
    c.Session.ct_recomputed;
    c.Session.ct_clean;
  ]

let check_counters name expected s =
  Alcotest.(check (list int))
    (name ^ " counters [files;reanalyses;invalidated;local;cross;\
             recomputed;clean]")
    expected
    (counters_list (Session.counters s))

(* ------------------------------------------------------------------ *)
(* Cross-file invalidation: the three channels                         *)
(* ------------------------------------------------------------------ *)

let test_signature_change () =
  let s = watch_tree tree0 in
  let upd = reanalyze_exn s ~path:"a.mc" a_sig in
  check_invals "signature change invalidates a.mc wholly + b.mc:h"
    [ "a.mc g edited"; "a.mc f edited"; "b.mc h cross:sig:g" ]
    upd;
  Alcotest.(check (list string))
    "only b.mc is cross-touched" [ "b.mc" ] upd.Session.up_cross_files;
  Alcotest.(check int) "all three recomputed" 3 upd.Session.up_recomputed;
  Alcotest.(check bool) "not clean" false upd.Session.up_clean;
  Alcotest.(check (list string))
    "c.mc's model was not reassembled"
    [ "a.mc"; "b.mc" ]
    (List.sort compare
       (List.map (fun (p, _, _) -> p) upd.Session.up_models));
  check_byte_identity s;
  check_counters "signature" [ 3; 1; 3; 2; 1; 3; 0 ] s

let test_annotation_change () =
  let s = watch_tree tree0 in
  let upd = reanalyze_exn s ~path:"a.mc" a_ann in
  check_invals "annotation payload change reaches b.mc:h via ann:g"
    [ "a.mc g edited"; "b.mc h cross:ann:g" ]
    upd;
  Alcotest.(check (list string))
    "only b.mc is cross-touched" [ "b.mc" ] upd.Session.up_cross_files;
  check_byte_identity s;
  check_counters "annotation" [ 3; 1; 2; 1; 1; 2; 0 ] s

let test_class_change () =
  let s = watch_tree [ ("d.mc", d0); ("e.mc", e0) ] in
  let upd = reanalyze_exn s ~path:"d.mc" d_field in
  check_invals "class field change reaches e.mc via class:stencil"
    [
      "d.mc run_d edited";
      "d.mc stencil::apply edited";
      "e.mc run_e cross:class:stencil";
      "e.mc stencil::apply cross:class:stencil";
    ]
    upd;
  Alcotest.(check (list string))
    "only e.mc is cross-touched" [ "e.mc" ] upd.Session.up_cross_files;
  check_byte_identity s;
  check_counters "class" [ 2; 1; 4; 2; 2; 4; 0 ] s

(* ------------------------------------------------------------------ *)
(* Within-file granularity                                             *)
(* ------------------------------------------------------------------ *)

let test_body_only_edit () =
  let s = watch_tree tree0 in
  let upd = reanalyze_exn s ~path:"a.mc" a_body in
  check_invals "an interface-neutral edit invalidates exactly one function"
    [ "a.mc f edited" ] upd;
  Alcotest.(check (list string))
    "no cross-file fallout" [] upd.Session.up_cross_files;
  check_byte_identity s;
  check_counters "body-only" [ 3; 1; 1; 1; 0; 1; 0 ] s

let test_clean_edit () =
  let s = watch_tree tree0 in
  let upd = reanalyze_exn s ~path:"a.mc" a0 in
  Alcotest.(check bool) "identical text is clean" true upd.Session.up_clean;
  check_invals "nothing invalidated" [] upd;
  Alcotest.(check (list string))
    "nothing deleted" [] upd.Session.up_deleted;
  Alcotest.(check int) "nothing recomputed" 0 upd.Session.up_recomputed;
  check_byte_identity s;
  check_counters "clean" [ 3; 1; 0; 0; 0; 0; 1 ] s

let test_deleted_function () =
  let s = watch_tree tree0 in
  let upd = reanalyze_exn s ~path:"a.mc" a_del in
  Alcotest.(check (list string))
    "f is reported deleted" [ "f" ] upd.Session.up_deleted;
  check_invals "the survivor re-fingerprints (sig:f left its context)"
    [ "a.mc g edited" ] upd;
  Alcotest.(check (list string))
    "nobody referenced sig:f" [] upd.Session.up_cross_files;
  let info = Option.get (Session.lookup s ~path:"a.mc") in
  Alcotest.(check (list string))
    "the model now holds g alone" [ "g" ] info.Session.in_functions;
  check_byte_identity s

let test_added_function () =
  let s = watch_tree tree0 in
  let upd = reanalyze_exn s ~path:"c.mc" c_add in
  check_invals "the new function is added; the old one re-fingerprints"
    [ "c.mc c_only edited"; "c.mc k added" ]
    upd;
  let info = Option.get (Session.lookup s ~path:"c.mc") in
  Alcotest.(check (list string))
    "program order is kept" [ "c_only"; "k" ] info.Session.in_functions;
  check_byte_identity s

(* ------------------------------------------------------------------ *)
(* Session lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let test_forget () =
  let s = watch_tree tree0 in
  Alcotest.(check bool) "forget b.mc" true (Session.forget s ~path:"b.mc");
  Alcotest.(check bool)
    "forgetting twice reports unwatched" false
    (Session.forget s ~path:"b.mc");
  Alcotest.(check (list string))
    "b.mc left the watch set" [ "a.mc"; "c.mc" ] (Session.paths s);
  (* the index entries went with it: the same signature edit that
     reached b.mc:h in [test_signature_change] now stays local *)
  let upd = reanalyze_exn s ~path:"a.mc" a_sig in
  check_invals "no cross-file fallout after forget"
    [ "a.mc g edited"; "a.mc f edited" ]
    upd;
  Alcotest.(check (list string))
    "no cross files" [] upd.Session.up_cross_files;
  check_byte_identity s

let test_unwatched_path () =
  let s = watch_tree tree0 in
  match Session.reanalyze s ~path:"zz.mc" c0 with
  | Ok _ -> Alcotest.fail "reanalyze of an unwatched path succeeded"
  | Error d ->
      Alcotest.(check bool)
        "the diagnostic names the path" true
        (let m = Diag.to_string d in
         String.length m > 0)

let test_broken_edit_keeps_state () =
  let s = watch_tree tree0 in
  let before = Option.get (Session.lookup s ~path:"a.mc") in
  (match Session.reanalyze s ~path:"a.mc" "double g(" with
  | Ok _ -> Alcotest.fail "a truncated source reanalyzed successfully"
  | Error _ -> ());
  let after = Option.get (Session.lookup s ~path:"a.mc") in
  Alcotest.(check string)
    "the last good model survives a broken edit" before.Session.in_python
    after.Session.in_python;
  Alcotest.(check (option string))
    "the last good source survives too" (Some a0)
    (Session.source s ~path:"a.mc");
  (* and the session still accepts a good edit afterwards *)
  let upd = reanalyze_exn s ~path:"a.mc" a_body in
  check_invals "recovers to normal service" [ "a.mc f edited" ] upd;
  check_byte_identity s

let test_counters_accumulate () =
  let s = watch_tree tree0 in
  ignore (reanalyze_exn s ~path:"a.mc" a_sig);
  ignore (reanalyze_exn s ~path:"a.mc" a_sig);
  (* clean *)
  ignore (reanalyze_exn s ~path:"a.mc" a_ann);
  (* sig + ann revert: both a.mc functions again, plus b.mc:h *)
  Session.forget s ~path:"c.mc" |> ignore;
  check_counters "after sig, clean, ann"
    [ 2; 3; 3 + 0 + 3; 2 + 0 + 2; 1 + 0 + 1; 3 + 0 + 3; 1 ]
    s

(* ------------------------------------------------------------------ *)
(* The daemon wire surface                                             *)
(* ------------------------------------------------------------------ *)

let temp_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

let with_server f =
  let socket = temp_name "mira-watch" ^ ".sock" in
  let server = Serve.create (Serve.default_config ~socket) in
  let th = Thread.create (fun () -> ignore (Serve.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      Alcotest.(check bool)
        "daemon is up" true
        (Client.wait_ready (Endpoint.Unix_sock socket));
      f socket)

let with_conn socket f =
  let fd = Serve.connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let roundtrip_exn fd req =
  match Serve.roundtrip fd req with
  | Ok r -> r
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let field_exn resp key =
  match Serve.field resp key with
  | Some v -> v
  | None -> Alcotest.failf "response is missing the %s= field" key

let test_daemon_watch_reanalyze () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          (* watch all three, shipping the text in the body *)
          List.iter
            (fun (p, text) ->
              let r =
                roundtrip_exn fd
                  (Serve.Watch { wt_path = p; wt_source = text })
              in
              Alcotest.(check string) ("watch " ^ p) "ok" r.Serve.rs_status;
              Alcotest.(check string)
                ("watch " ^ p ^ " echoes the path") p (field_exn r "path"))
            tree0;
          let stats = roundtrip_exn fd Serve.Stats in
          Alcotest.(check string)
            "stats counts watched files" "3"
            (field_exn stats "watch-files");
          (* reanalyze streams: one tagged frame per invalidated
             function, then the terminal reanalyze-done frame *)
          Serve.write_frame fd
            (Serve.encode_request ~id:"rz-1"
               (Serve.Reanalyze { rz_path = "a.mc"; rz_source = a_sig }));
          let rec drain acc =
            match Serve.read_frame fd with
            | Error e ->
                Alcotest.failf "stream died: %s"
                  (Serve.frame_error_to_string e)
            | Ok payload -> (
                match Serve.parse_response payload with
                | Error m -> Alcotest.failf "bad frame: %s" m
                | Ok resp ->
                    Alcotest.(check string)
                      "streamed frames are tagged with the request id"
                      "rz-1" (field_exn resp "id");
                    if Serve.field resp "reanalyze-done" = Some "1" then
                      (resp, List.rev acc)
                    else drain (resp :: acc))
          in
          let final, bindings = drain [] in
          Alcotest.(check (list string))
            "one frame per invalidated function, exact set"
            [
              "a.mc f edited"; "a.mc g edited"; "b.mc h cross:sig:g";
            ]
            (List.sort compare
               (List.map
                  (fun r ->
                    Printf.sprintf "%s %s %s" (field_exn r "file")
                      (field_exn r "function")
                      (field_exn r "reason"))
                  bindings));
          List.iter
            (fun r ->
              Alcotest.(check string)
                "per-function frames are ok" "ok" r.Serve.rs_status)
            bindings;
          Alcotest.(check string)
            "terminal frame: invalidated" "3" (field_exn final "invalidated");
          Alcotest.(check string)
            "terminal frame: cross-files" "1" (field_exn final "cross-files");
          Alcotest.(check string)
            "terminal frame: clean" "0" (field_exn final "clean");
          (* the terminal body carries each reassembled model; its
             digest must match a cold analysis of the same text *)
          let digest_of text = Digest.to_hex (Digest.string text) in
          List.iter
            (fun (path, text) ->
              let want =
                Printf.sprintf "\"python_digest\":\"%s\""
                  (digest_of (cold_python path text))
              in
              Alcotest.(check bool)
                (path ^ ": terminal body pins the cold digest")
                true
                (let body = final.Serve.rs_body in
                 let wn = String.length want and bn = String.length body in
                 let rec scan i =
                   i + wn <= bn
                   && (String.sub body i wn = want || scan (i + 1))
                 in
                 scan 0))
            [ ("a.mc", a_sig); ("b.mc", b0) ];
          (* counters made it to stats *)
          let stats = roundtrip_exn fd Serve.Stats in
          Alcotest.(check string)
            "stats: invalidated" "3" (field_exn stats "watch-invalidated");
          Alcotest.(check string)
            "stats: cross" "1" (field_exn stats "watch-cross");
          (* forget round-trips, idempotently *)
          let r = roundtrip_exn fd (Serve.Forget { fg_path = "c.mc" }) in
          Alcotest.(check string) "forget" "1" (field_exn r "forgotten");
          let r = roundtrip_exn fd (Serve.Forget { fg_path = "c.mc" }) in
          Alcotest.(check string)
            "forget twice" "0" (field_exn r "forgotten")))

let test_daemon_watch_from_disk () =
  with_server (fun socket ->
      with_conn socket (fun fd ->
          (* an empty body asks the daemon to read its own filesystem *)
          let path = temp_name "mira-watch-src" ^ ".mc" in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc c0);
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              let r =
                roundtrip_exn fd
                  (Serve.Watch { wt_path = path; wt_source = "" })
              in
              Alcotest.(check string) "watch from disk" "ok" r.Serve.rs_status;
              Alcotest.(check string)
                "one function" "1" (field_exn r "functions"));
          (* a missing file comes back as a structured io error *)
          let r =
            roundtrip_exn fd
              (Serve.Watch
                 { wt_path = temp_name "mira-no-such" ^ ".mc"; wt_source = "" })
          in
          Alcotest.(check string)
            "missing file is an error frame" "error" r.Serve.rs_status;
          (* an untagged reanalyze is refused: its responses stream *)
          let r =
            roundtrip_exn fd
              (Serve.Reanalyze { rz_path = "x.mc"; rz_source = c0 })
          in
          Alcotest.(check string)
            "untagged reanalyze is refused" "error" r.Serve.rs_status))

let () =
  Alcotest.run "watch"
    [
      ( "cross-file",
        [
          Alcotest.test_case "signature change" `Quick test_signature_change;
          Alcotest.test_case "annotation change" `Quick
            test_annotation_change;
          Alcotest.test_case "class change" `Quick test_class_change;
        ] );
      ( "within-file",
        [
          Alcotest.test_case "body-only edit" `Quick test_body_only_edit;
          Alcotest.test_case "clean edit" `Quick test_clean_edit;
          Alcotest.test_case "deleted function" `Quick test_deleted_function;
          Alcotest.test_case "added function" `Quick test_added_function;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "forget" `Quick test_forget;
          Alcotest.test_case "unwatched path" `Quick test_unwatched_path;
          Alcotest.test_case "broken edit keeps state" `Quick
            test_broken_edit_keeps_state;
          Alcotest.test_case "counters accumulate" `Quick
            test_counters_accumulate;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "watch/reanalyze/forget over the wire" `Quick
            test_daemon_watch_reanalyze;
          Alcotest.test_case "disk reads and refusals" `Quick
            test_daemon_watch_from_disk;
        ] );
    ]
