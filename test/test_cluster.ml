(* The distributed sweep cluster, exercised end to end:

   - auth: SHA-256 / HMAC-SHA256 against the FIPS 180-4 and RFC 4231
     vectors; seal/verify round-trips; forged and missing MACs are
     rejected in constant time;
   - auth enforcement: a secret-bearing daemon rejects unauthenticated
     and bad-MAC frames on tcp with a structured [auth] error before
     they reach the analysis pool, accepts them on unix (optional
     there), verifies a MAC whenever one is presented, and seals every
     response it sends;
   - the sweep verb: a whole chunk travels in one frame, per-binding
     responses stream back tagged [binding=] with a terminal
     [sweep-done=1] frame; malformed sweeps are structured errors; the
     pool client refuses the verb (its responses stream);
   - coordinator: a 3-daemon sweep merges to the same answers as a
     1-daemon sweep, in input order; an injected daemon kill
     (MIRA_FAULT_SEED-pinned) re-dispatches only the unfinished
     bindings; a real SIGKILLed daemon process mid-sweep loses and
     duplicates nothing; whole-fleet death returns partial results
     naming every unfinished binding, and the CLI turns that into
     exit 3;
   - sharding: --shard I/K membership partitions the expanded path set
     exactly for several K;
   - cache merge: merged shard caches serve a full warm run
     byte-identically, re-merge is a no-op, corrupt source entries are
     skipped. *)

open Mira_core

let seed =
  match Sys.getenv_opt "MIRA_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "MIRA_FAULT_SEED must be an integer")
  | None -> 20260806

let temp_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let mira_exe = Filename.concat (Filename.concat ".." "bin") "mira.exe"
let saxpy = Option.get (Mira_corpus.Corpus.find "saxpy")
let stream = Option.get (Mira_corpus.Corpus.find "stream")
let secret = "cluster-test-secret"

(* ---------- auth vectors ---------- *)

let auth_tests =
  let open Alcotest in
  [
    test_case "SHA-256 matches the FIPS 180-4 vectors" `Quick (fun () ->
        check string "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (Auth.sha256_hex "");
        check string "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (Auth.sha256_hex "abc");
        check string "448-bit"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (Auth.sha256_hex
             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
    test_case "HMAC-SHA256 matches the RFC 4231 vectors" `Quick (fun () ->
        check string "case 1"
          "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (Auth.hmac_sha256_hex ~key:(String.make 20 '\x0b') "Hi There");
        check string "case 2"
          "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (Auth.hmac_sha256_hex ~key:"Jefe" "what do ya want for nothing?");
        (* key longer than the block: hashed first *)
        check string "case 6"
          "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
          (Auth.hmac_sha256_hex
             ~key:(String.make 131 '\xaa')
             "Test Using Larger Than Block-Size Key - Hash Key First"));
    test_case "seal/verify round-trips and rejects forgery" `Quick (fun () ->
        let payload = Serve.encode_request ~id:"x1" Serve.Ping in
        let sealed = Auth.seal ~secret payload in
        (match Auth.verify ~secret sealed with
        | `Ok stripped ->
            check string "verify recovers the unsealed payload" payload
              stripped
        | `Missing | `Bad -> fail "sealed payload did not verify");
        (match Auth.verify ~secret:"other" sealed with
        | `Bad -> ()
        | `Ok _ | `Missing -> fail "wrong secret accepted");
        (match Auth.verify ~secret payload with
        | `Missing -> ()
        | `Ok _ | `Bad -> fail "unsealed payload accepted");
        (* flipping one payload byte must invalidate the MAC *)
        let tampered = Bytes.of_string sealed in
        Bytes.set tampered (Bytes.length tampered - 1) '\xff';
        match Auth.verify ~secret (Bytes.to_string tampered) with
        | `Bad -> ()
        | `Ok _ | `Missing -> fail "tampered payload accepted");
    test_case "constant-time compare" `Quick (fun () ->
        check bool "equal" true (Auth.equal_constant_time "abcd" "abcd");
        check bool "different" false (Auth.equal_constant_time "abcd" "abce");
        check bool "length mismatch" false
          (Auth.equal_constant_time "abc" "abcd"));
    test_case "secret files strip trailing newlines, reject empty" `Quick
      (fun () ->
        let f = temp_name "mira-secret" in
        write_file f "s3cret\n";
        (match Auth.read_secret_file f with
        | Ok s -> check string "stripped" "s3cret" s
        | Error m -> failf "read_secret_file: %s" m);
        write_file f "\n\n";
        (match Auth.read_secret_file f with
        | Error _ -> ()
        | Ok _ -> fail "empty secret accepted");
        Sys.remove f);
  ]

(* ---------- in-process daemon harness ---------- *)

let with_daemon ?(cfg = fun c -> c) ?auth_secret ?(wait = true) endpoints f =
  let config = cfg (Serve.default_config_endpoints ~endpoints) in
  let server = Serve.create config in
  let th = Thread.create (fun () -> ignore (Serve.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      List.iter
        (function
          | Endpoint.Unix_sock p -> (
              try Sys.remove p with Sys_error _ -> ())
          | Endpoint.Tcp _ -> ())
        endpoints)
    (fun () ->
      let eps = Serve.bound_endpoints server in
      (* a fault-injecting daemon may deterministically kill the very
         pong wait_ready listens for; sockets are bound synchronously
         by [create], so such tests skip the readiness ping *)
      if wait then
        Alcotest.(check bool)
          "daemon is up" true
          (Client.wait_ready ?auth_secret (List.hd eps));
      f ~eps server)

let unix_ep () = Endpoint.Unix_sock (temp_name "mira-cluster" ^ ".sock")

let read_response_exn fd =
  match Serve.read_frame fd with
  | Error e -> Alcotest.failf "read_frame: %s" (Serve.frame_error_to_string e)
  | Ok payload -> (
      match Serve.parse_response payload with
      | Ok r -> r
      | Error m -> Alcotest.failf "parse_response: %s" m)

let with_conn ep f =
  let fd = Endpoint.connect ep in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let sweep_req ?(budget = Serve.no_budget) bindings =
  Serve.Sweep
    {
      sw_sources = [ ("saxpy", saxpy); ("stream", stream) ];
      sw_bindings =
        List.mapi
          (fun i (src, fn, params) ->
            { Serve.sb_index = i; sb_source = src; sb_function = fn;
              sb_params = params })
          bindings;
      sw_budget = budget;
    }

let mixed_bindings n =
  List.init n (fun i ->
      if i mod 2 = 0 then ("saxpy", "saxpy_chain", [ ("n", 10 + i); ("reps", 2) ])
      else ("stream", "stream_triad", [ ("n", 100 + (10 * i)) ]))

(* ---------- the sweep verb ---------- *)

let sweep_tests =
  let open Alcotest in
  [
    test_case "sweep codec round-trips" `Quick (fun () ->
        let req = sweep_req (mixed_bindings 5) in
        match Serve.parse_request (Serve.encode_request ~id:"s1" req) with
        | Ok req' -> check bool "round-trip" true (req = req')
        | Error m -> failf "parse_request: %s" m);
    test_case "sweep rejects unknown sources and malformed bodies" `Quick
      (fun () ->
        let bad =
          Serve.Sweep
            {
              sw_sources = [ ("saxpy", saxpy) ];
              sw_bindings =
                [
                  { Serve.sb_index = 0; sb_source = "nope"; sb_function = "f";
                    sb_params = [] };
                ];
              sw_budget = Serve.no_budget;
            }
        in
        (match Serve.parse_request (Serve.encode_request ~id:"s1" bad) with
        | Error _ -> ()
        | Ok _ -> fail "binding naming an unknown source parsed");
        match Serve.parse_request "mira/1 sweep\n\nsource x 999\nhi\n" with
        | Error _ -> ()
        | Ok _ -> fail "lying source length parsed");
    test_case "sweep streams one tagged frame per binding plus a terminal"
      `Quick (fun () ->
        let ep = unix_ep () in
        with_daemon [ ep ] (fun ~eps:_ _server ->
            with_conn ep (fun fd ->
                let n = 7 in
                Serve.write_frame fd
                  (Serve.encode_request ~id:"sw" (sweep_req (mixed_bindings n)));
                let seen = Hashtbl.create n in
                let rec collect () =
                  let r = read_response_exn fd in
                  check (option string) "sweep id echoed" (Some "sw")
                    (Serve.field r "id");
                  if Serve.field r "sweep-done" = Some "1" then r
                  else begin
                    (match
                       Option.bind (Serve.field r "binding") int_of_string_opt
                     with
                    | Some i ->
                        check bool "binding index in range" true
                          (i >= 0 && i < n);
                        check bool "binding answered once" false
                          (Hashtbl.mem seen i);
                        Hashtbl.replace seen i ();
                        check string "binding ok" "ok" r.Serve.rs_status;
                        check bool "binding carries fpi" true
                          (Serve.field r "fpi" <> None)
                    | None -> fail "untagged frame mid-sweep");
                    collect ()
                  end
                in
                let terminal = collect () in
                check int "every binding answered" n (Hashtbl.length seen);
                check (option string) "terminal counts bindings"
                  (Some (string_of_int n))
                  (Serve.field terminal "bindings");
                check (option string) "terminal counts ok"
                  (Some (string_of_int n))
                  (Serve.field terminal "ok"))));
    test_case "empty sweep answers its terminal immediately" `Quick (fun () ->
        let ep = unix_ep () in
        with_daemon [ ep ] (fun ~eps:_ _server ->
            with_conn ep (fun fd ->
                Serve.write_frame fd
                  (Serve.encode_request ~id:"sw" (sweep_req []));
                let r = read_response_exn fd in
                check (option string) "terminal" (Some "1")
                  (Serve.field r "sweep-done");
                check (option string) "zero bindings" (Some "0")
                  (Serve.field r "bindings"))));
    test_case "sweep without an id is a structured error" `Quick (fun () ->
        let ep = unix_ep () in
        with_daemon [ ep ] (fun ~eps:_ _server ->
            with_conn ep (fun fd ->
                Serve.write_frame fd
                  (Serve.encode_request (sweep_req (mixed_bindings 2)));
                let r = read_response_exn fd in
                check string "error" "error" r.Serve.rs_status;
                check (option string) "bad-request" (Some "bad-request")
                  (Serve.field r "code"))));
    test_case "the pool client refuses the sweep verb" `Quick (fun () ->
        let ep = unix_ep () in
        with_daemon [ ep ] (fun ~eps _server ->
            Client.with_pool eps (fun pool ->
                match Client.request pool (sweep_req (mixed_bindings 2)) with
                | Error m ->
                    check bool "points at the coordinator" true
                      (String.length m > 0)
                | Ok _ -> fail "pool accepted a streaming verb")));
  ]

(* ---------- auth enforcement ---------- *)

let auth_enforcement_tests =
  let open Alcotest in
  let secret_cfg c = { c with Serve.cfg_auth_secret = Some secret } in
  [
    test_case "tcp requires a MAC, unix does not; bad MACs always rejected"
      `Quick (fun () ->
        let uep = unix_ep () in
        with_daemon ~cfg:secret_cfg
          [ uep; Endpoint.Tcp ("127.0.0.1", 0) ]
          (fun ~eps server ->
            let tep =
              List.find (function Endpoint.Tcp _ -> true | _ -> false) eps
            in
            (* unauthenticated ping over tcp: auth error, never served *)
            with_conn tep (fun fd ->
                Serve.write_frame fd (Serve.encode_request Serve.Ping);
                let r = read_response_exn fd in
                check string "rejected" "error" r.Serve.rs_status;
                check (option string) "auth code" (Some "auth")
                  (Serve.field r "code"));
            (* bad MAC over tcp: same, and over unix too (verified when
               present) *)
            List.iter
              (fun ep ->
                with_conn ep (fun fd ->
                    Serve.write_frame fd
                      (Auth.seal ~secret:"wrong"
                         (Serve.encode_request Serve.Ping));
                    let r = read_response_exn fd in
                    check (option string) "auth code" (Some "auth")
                      (Serve.field r "code")))
              [ tep; uep ];
            (* unauthenticated over unix: optional there *)
            with_conn uep (fun fd ->
                match Serve.roundtrip fd Serve.Ping with
                | Ok r -> check string "unix ok" "ok" r.Serve.rs_status
                | Error m -> failf "unix unauthenticated ping: %s" m);
            (* authenticated over tcp: proceeds, response is sealed *)
            with_conn tep (fun fd ->
                Serve.write_frame fd
                  (Auth.seal ~secret (Serve.encode_request Serve.Ping));
                match Serve.read_frame fd with
                | Error e -> failf "read: %s" (Serve.frame_error_to_string e)
                | Ok payload -> (
                    match Auth.verify ~secret payload with
                    | `Ok p ->
                        let r = Result.get_ok (Serve.parse_response p) in
                        check string "sealed pong" "ok" r.Serve.rs_status
                    | `Missing | `Bad -> fail "response was not sealed"));
            (* the rejected analyze below must never reach the pool *)
            with_conn tep (fun fd ->
                Serve.write_frame fd
                  (Serve.encode_request
                     (Serve.Analyze
                        {
                          an_name = "saxpy";
                          an_source = saxpy;
                          an_budget = Serve.no_budget;
                        }));
                let r = read_response_exn fd in
                check (option string) "analyze rejected" (Some "auth")
                  (Serve.field r "code"));
            let st = Serve.stats server in
            check int "nothing analyzed" 0 st.Serve.sv_analyzed;
            check bool "rejections counted as protocol errors" true
              (st.Serve.sv_protocol_errors >= 3)));
    test_case "roundtrip and the pool speak auth transparently" `Quick
      (fun () ->
        with_daemon ~cfg:secret_cfg ~auth_secret:secret
          [ Endpoint.Tcp ("127.0.0.1", 0) ]
          (fun ~eps _server ->
            with_conn (List.hd eps) (fun fd ->
                match Serve.roundtrip ~auth_secret:secret fd Serve.Ping with
                | Ok r -> check string "ok" "ok" r.Serve.rs_status
                | Error m -> failf "authenticated roundtrip: %s" m);
            Client.with_pool ~auth_secret:secret eps (fun pool ->
                match Client.request pool Serve.Ping with
                | Ok r -> check string "pool ok" "ok" r.Serve.rs_status
                | Error m -> failf "authenticated pool: %s" m)));
  ]

(* ---------- coordinator ---------- *)

let ok_key r =
  match r with
  | Ok resp ->
      Printf.sprintf "%s fpi=%s total=%s" resp.Serve.rs_status
        (Option.value (Serve.field resp "fpi") ~default:"?")
        (Option.value (Serve.field resp "total") ~default:"?")
  | Error m -> "error " ^ m

let coordinator_bindings n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        { Coordinator.bd_name = "saxpy"; bd_source = saxpy;
          bd_function = "saxpy_chain";
          bd_params = [ ("n", 10 + i); ("reps", 2) ] }
      else
        { Coordinator.bd_name = "stream"; bd_source = stream;
          bd_function = "stream_triad"; bd_params = [ ("n", 100 + (10 * i)) ] })

let coordinator_tests =
  let open Alcotest in
  [
    test_case "three daemons answer exactly what one daemon answers" `Quick
      (fun () ->
        let bindings = coordinator_bindings 40 in
        let run eps =
          let results, stats = Coordinator.run ~chunk:8 eps bindings in
          check int "all finished" 40 stats.Coordinator.co_finished;
          check (list int) "nothing unfinished" []
            stats.Coordinator.co_unfinished;
          Array.to_list (Array.map ok_key results)
        in
        let reference =
          with_daemon [ unix_ep () ] (fun ~eps _server -> run eps)
        in
        let clustered =
          with_daemon [ unix_ep () ] (fun ~eps:e1 _s1 ->
              with_daemon [ unix_ep () ] (fun ~eps:e2 _s2 ->
                  with_daemon
                    [ Endpoint.Tcp ("127.0.0.1", 0) ]
                    (fun ~eps:e3 _s3 -> run (e1 @ e2 @ e3))))
        in
        check (list string) "identical, in input order" reference clustered);
    test_case "an injected daemon kill re-dispatches only the unfinished"
      `Quick (fun () ->
        (* one daemon whose wire kills connections mid-sweep (the
           net_kill site: the frame is never written, the socket is
           severed — exactly a SIGKILL's kernel behavior), one clean
           daemon to absorb the re-dispatches *)
        let kill_faults =
          {
            Faults.none with
            Faults.seed;
            kill_p = 0.4;
          }
        in
        let bindings = coordinator_bindings 30 in
        with_daemon
          ~cfg:(fun c -> { c with Serve.cfg_faults = Some kill_faults })
          ~wait:false
          [ unix_ep () ]
          (fun ~eps:faulty _s1 ->
            with_daemon [ unix_ep () ] (fun ~eps:clean _s2 ->
                let results, stats =
                  Coordinator.run ~chunk:5 ~heartbeat_ms:400 ~retries:2
                    ~backoff_ms:20 (faulty @ clean) bindings
                in
                check int "every binding answered" 30
                  stats.Coordinator.co_finished;
                check (list int) "none unfinished" []
                  stats.Coordinator.co_unfinished;
                Array.iter
                  (fun r ->
                    match r with
                    | Ok resp ->
                        check string "answered ok" "ok" resp.Serve.rs_status
                    | Error m -> failf "binding lost: %s" m)
                  results;
                (* under the pinned default seed the kill site fires and
                   forces re-dispatch; under another seed only the
                   exactly-once contract is asserted *)
                if seed = 20260806 then
                  check bool "kills forced re-dispatch" true
                    (stats.Coordinator.co_redispatched > 0))));
    test_case "a misconfigured secret fails fast, not forever" `Quick
      (fun () ->
        with_daemon
          ~cfg:(fun c -> { c with Serve.cfg_auth_secret = Some secret })
          ~auth_secret:secret
          [ Endpoint.Tcp ("127.0.0.1", 0) ]
          (fun ~eps _server ->
            let results, stats =
              Coordinator.run ~chunk:4 ~retries:1 ~backoff_ms:10 eps
                (coordinator_bindings 8)
            in
            (* request-level rejection: recorded as errors, no endless
               re-dispatch loop, nothing left unfinished *)
            check (list int) "none unfinished" []
              stats.Coordinator.co_unfinished;
            Array.iter
              (fun r ->
                match r with
                | Error m ->
                    check bool "names the rejection" true
                      (String.length m > 0)
                | Ok _ -> fail "unauthenticated sweep was served")
              results));
    test_case "whole-fleet death names every unfinished binding" `Quick
      (fun () ->
        (* a port with nothing listening: connect is refused on every
           attempt, the only endpoint retires, and run returns with the
           full unfinished list *)
        let port =
          let fd, ep = Endpoint.listen (Endpoint.Tcp ("127.0.0.1", 0)) in
          Unix.close fd;
          match ep with Endpoint.Tcp (_, p) -> p | _ -> assert false
        in
        let results, stats =
          Coordinator.run ~chunk:4 ~retries:0 ~backoff_ms:10
            [ Endpoint.Tcp ("127.0.0.1", port) ]
            (coordinator_bindings 10)
        in
        check int "nothing finished" 0 stats.Coordinator.co_finished;
        check (list int) "every binding named"
          (List.init 10 Fun.id)
          stats.Coordinator.co_unfinished;
        check int "one daemon lost" 1 stats.Coordinator.co_daemons_lost;
        Array.iter
          (fun r ->
            match r with
            | Error _ -> ()
            | Ok _ -> fail "a dead fleet answered")
          results);
  ]

(* ---------- real daemon processes: SIGKILL mid-sweep ---------- *)

let spawn_serve args out_file =
  let out =
    Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close out;
      Unix.close devnull)
    (fun () ->
      Unix.create_process mira_exe
        (Array.append [| mira_exe; "serve" |] args)
        devnull out devnull)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* poll the daemon's ready line for its (possibly OS-assigned) endpoint *)
let wait_listening ?(timeout_s = 15.0) out_file =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let line =
      if Sys.file_exists out_file then
        read_file out_file |> String.split_on_char '\n'
        |> List.find_opt (fun l ->
               String.length l > 0
               && String.starts_with ~prefix:"mira serve: listening on " l)
      else None
    in
    match line with
    | Some l ->
        let prefix = "mira serve: listening on " in
        Endpoint.parse_exn
          (String.sub l (String.length prefix)
             (String.length l - String.length prefix))
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "daemon never printed its ready line"
        else begin
          Unix.sleepf 0.02;
          go ()
        end
  in
  go ()

let wait_exit ?(timeout_s = 20.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "subprocess did not exit in time"
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, st -> st
  in
  go ()

let kill_pid pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let sigkill_tests =
  let open Alcotest in
  [
    test_case
      "SIGKILLing a daemon process mid-sweep loses and duplicates nothing"
      `Slow (fun () ->
        let secret_file = temp_name "mira-secret" in
        write_file secret_file (secret ^ "\n");
        let sock = temp_name "mira-cluster" ^ ".sock" in
        let outs = List.init 3 (fun i -> temp_name (Printf.sprintf "d%d" i)) in
        let args = function
          | 0 -> [| "--socket"; sock |]
          | _ -> [| "--endpoint"; "tcp:127.0.0.1:0" |]
        in
        let pids =
          List.mapi
            (fun i out ->
              spawn_serve
                (Array.append (args i)
                   [|
                     "--auth-secret-file"; secret_file; "--workers"; "4";
                     "--cache"; "--cache-dir";
                     temp_name (Printf.sprintf "cache%d" i);
                   |])
                out)
            outs
        in
        Fun.protect
          ~finally:(fun () ->
            List.iter kill_pid pids;
            List.iter (fun p -> ignore (wait_exit p)) pids;
            (try Sys.remove secret_file with Sys_error _ -> ());
            List.iter
              (fun f -> try Sys.remove f with Sys_error _ -> ())
              outs;
            try Sys.remove sock with Sys_error _ -> ())
          (fun () ->
            let eps = List.map wait_listening outs in
            List.iter
              (fun ep ->
                check bool "daemon is up" true
                  (Client.wait_ready ~auth_secret:secret ep))
              eps;
            let n = 1000 in
            let bindings = coordinator_bindings n in
            (* SIGKILL the last tcp daemon once real progress exists,
               from the progress callback — i.e. guaranteed mid-sweep *)
            let victim = List.nth pids 2 in
            let killed = Atomic.make false in
            let on_progress ~finished ~total:_ =
              if finished >= 50 && not (Atomic.exchange killed true) then
                kill_pid victim
            in
            let results, stats =
              Coordinator.run ~chunk:32 ~heartbeat_ms:500 ~backoff_ms:50
                ~auth_secret:secret ~on_progress eps bindings
            in
            check bool "the victim was killed mid-run" true
              (Atomic.get killed);
            check int "every binding answered exactly once" n
              stats.Coordinator.co_finished;
            check (list int) "none unfinished" []
              stats.Coordinator.co_unfinished;
            check int "no duplicate answers recorded" 0
              stats.Coordinator.co_duplicates;
            let clustered = Array.map ok_key results in
            (* the surviving unix daemon alone must produce the same
               answers: nothing was lost, reordered, or double-served *)
            let reference, _ =
              Coordinator.run ~chunk:32 ~auth_secret:secret
                [ List.hd eps ] bindings
            in
            check (list string) "identical to a single-daemon run"
              (Array.to_list (Array.map ok_key reference))
              (Array.to_list clustered)));
    test_case "the CLI turns whole-fleet death into exit 3" `Slow (fun () ->
        let dir = temp_name "mira-fleet" in
        Sys.mkdir dir 0o755;
        let src = Filename.concat dir "saxpy.mc" in
        write_file src saxpy;
        let sweep = Filename.concat dir "sweep.txt" in
        write_file sweep
          (String.concat ""
             (List.init 5 (fun i ->
                  Printf.sprintf "%s saxpy_chain n=%d reps=2\n" src (10 + i))));
        let port =
          let fd, ep = Endpoint.listen (Endpoint.Tcp ("127.0.0.1", 0)) in
          Unix.close fd;
          match ep with Endpoint.Tcp (_, p) -> p | _ -> assert false
        in
        let err_file = Filename.concat dir "err" in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        let err =
          Unix.openfile err_file
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o600
        in
        let pid =
          Fun.protect
            ~finally:(fun () ->
              Unix.close devnull;
              Unix.close err)
            (fun () ->
              Unix.create_process mira_exe
                [|
                  mira_exe; "eval-sweep"; sweep; "-e";
                  Printf.sprintf "tcp:127.0.0.1:%d" port; "--dispatch-retries";
                  "0"; "--heartbeat-ms"; "200";
                |]
                devnull devnull err)
        in
        (match wait_exit pid with
        | Unix.WEXITED c -> check int "exit 3" 3 c
        | _ -> fail "eval-sweep did not exit normally");
        let err_text = read_file err_file in
        check bool "names the unfinished evaluations" true
          (let rec has i =
             i >= 0
             && (String.length err_text - i >= 11
                 && String.sub err_text i 11 = "unfinished:"
                || has (i - 1))
           in
           has (String.length err_text - 11));
        rm_rf dir);
  ]

(* ---------- sharding and cache merge ---------- *)

let shard_tests =
  let open Alcotest in
  [
    test_case "--shard membership partitions the expanded paths" `Quick
      (fun () ->
        let dir = temp_name "mira-shard" in
        Sys.mkdir dir 0o755;
        List.iteri
          (fun i (name, text) ->
            write_file
              (Filename.concat dir (Printf.sprintf "p%02d_%s.mc" i name))
              text)
          (List.concat (List.init 6 (fun _ -> [ ("saxpy", saxpy); ("stream", stream) ])));
        let paths = Batch.expand_paths [ dir ] in
        check int "twelve paths" 12 (List.length paths);
        List.iter
          (fun count ->
            let owners =
              List.map
                (fun p ->
                  let hits =
                    List.filter
                      (fun index -> Batch.shard_member ~index ~count p)
                      (List.init count (fun i -> i + 1))
                  in
                  check int
                    (Printf.sprintf "%s owned exactly once of %d" p count)
                    1 (List.length hits);
                  List.hd hits)
                paths
            in
            (* union covers everything by construction; also require the
               assignment be deterministic across calls *)
            check (list int) "stable" owners
              (List.map
                 (fun p ->
                   List.find
                     (fun index -> Batch.shard_member ~index ~count p)
                     (List.init count (fun i -> i + 1)))
                 paths))
          [ 1; 2; 3; 5 ];
        (match Batch.shard_member ~index:0 ~count:3 "x" with
        | exception Invalid_argument _ -> ()
        | _ -> fail "index 0 accepted");
        (match Batch.shard_member ~index:4 ~count:3 "x" with
        | exception Invalid_argument _ -> ()
        | _ -> fail "index > count accepted");
        rm_rf dir);
    test_case "merged shard caches serve a warm, byte-identical run" `Quick
      (fun () ->
        let d1 = temp_name "mira-cache-a" in
        let d2 = temp_name "mira-cache-b" in
        let dst = temp_name "mira-cache-m" in
        let srcs1 = [ { Batch.src_name = "saxpy.mc"; src_text = saxpy } ] in
        let srcs2 = [ { Batch.src_name = "stream.mc"; src_text = stream } ] in
        let all = srcs1 @ srcs2 in
        (* a cold reference for byte-identity *)
        let cold, _ = Batch.run all in
        let r1, _ = Batch.run ~cache:(Batch.create_cache ~dir:d1 ()) srcs1 in
        let r2, _ = Batch.run ~cache:(Batch.create_cache ~dir:d2 ()) srcs2 in
        check int "shards analyzed" 2 (List.length r1 + List.length r2);
        (* drop a corrupt entry into a shard: it must be skipped *)
        write_file (Filename.concat d1 "deadbeef.model") "MIRAC2\ngarbage";
        let st = Batch.merge_dirs ~dst [ d1; d2 ] in
        check int "corrupt skipped" 1 st.Batch.mg_corrupt;
        check bool "entries copied" true (st.Batch.mg_copied > 0);
        check int "nothing failed" 0 st.Batch.mg_failed;
        let again = Batch.merge_dirs ~dst [ d1; d2 ] in
        check int "re-merge copies nothing" 0 again.Batch.mg_copied;
        check int "re-merge finds everything present" st.Batch.mg_copied
          again.Batch.mg_present;
        let warm, wstats =
          Batch.run ~cache:(Batch.create_cache ~dir:dst ()) all
        in
        check int "no re-analysis against the merged cache" 0
          wstats.Batch.st_analyzed;
        check int "every source a disk hit" 2 wstats.Batch.st_disk_hits;
        List.iter2
          (fun c w ->
            match (c, w) with
            | Ok (ca : Batch.analysis), Ok wa ->
                check string "python byte-identical" ca.Batch.a_python
                  wa.Batch.a_python
            | _ -> fail "warm run failed where cold run succeeded")
          cold warm;
        List.iter rm_rf [ d1; d2; dst ]);
  ]

let () =
  Alcotest.run "mira cluster"
    [
      ("auth", auth_tests);
      ("sweep verb", sweep_tests);
      ("auth enforcement", auth_enforcement_tests);
      ("coordinator", coordinator_tests);
      ("sigkill", sigkill_tests);
      ("shard & merge", shard_tests);
    ]
