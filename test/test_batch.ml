(* Batch driver guarantees:
   - jobs=1 and jobs=4 produce byte-identical Python models, warnings
     and reports for the whole corpus;
   - a warm cache run performs zero re-analyses (Batch.stats);
   - the disk tier survives a fresh in-memory cache and invalidates on
     source or level changes;
   - failures are reported per source without aborting the batch. *)

open Mira_core

let corpus_sources = Mira_corpus.Corpus.all

let run_batch ?jobs ?cache ?level () =
  Mira.analyze_batch ?jobs ?cache ?level corpus_sources

let render (results, stats) =
  let pythons =
    String.concat "\x00"
      (List.map
         (function
           | Ok (a : Batch.analysis) -> a.a_python
           | Error (name, diag) -> name ^ ": " ^ Diag.to_string diag)
         results)
  in
  (pythons, Batch.report results stats)

let strip_stats_line report =
  (* everything up to the trailing "batch: ..." stats line, which is
     allowed to differ between cache states (not between job counts) *)
  String.concat "\n"
    (List.filter
       (fun l -> not (String.length l >= 6 && String.sub l 0 6 = "batch:"))
       (String.split_on_char '\n' report))

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mira-batch-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let batch_tests =
  let open Alcotest in
  [
    test_case "jobs=1 and jobs=4 outputs byte-identical" `Quick (fun () ->
        let p1, r1 = render (run_batch ~jobs:1 ()) in
        let p4, r4 = render (run_batch ~jobs:4 ()) in
        check bool "python models identical" true (String.equal p1 p4);
        check bool "reports identical" true (String.equal r1 r4));
    test_case "results come back in input order" `Quick (fun () ->
        let results, _ = run_batch ~jobs:4 () in
        let names =
          List.map
            (function Ok (a : Batch.analysis) -> a.a_name | Error (n, _) -> n)
            results
        in
        check (list string) "order" (List.map fst corpus_sources) names);
    test_case "warm memory cache performs zero re-analyses" `Quick (fun () ->
        let cache = Batch.create_cache () in
        let _, cold = run_batch ~jobs:4 ~cache () in
        check int "cold run analyzes everything"
          (List.length corpus_sources)
          cold.Batch.st_analyzed;
        let warm_results, warm = run_batch ~jobs:4 ~cache () in
        check int "warm run analyzes nothing" 0 warm.Batch.st_analyzed;
        check int "warm run hits memory"
          (List.length corpus_sources)
          warm.Batch.st_mem_hits;
        check bool "hits are flagged" true
          (List.for_all
             (function Ok a -> a.Batch.a_cached | Error _ -> false)
             warm_results));
    test_case "cached outputs byte-identical to fresh" `Quick (fun () ->
        let cache = Batch.create_cache () in
        let fresh = run_batch ~jobs:1 () in
        ignore (run_batch ~jobs:1 ~cache ());
        let warm = run_batch ~jobs:4 ~cache () in
        check bool "python identical" true
          (String.equal (fst (render fresh)) (fst (render warm)));
        check bool "report identical modulo stats line" true
          (String.equal
             (strip_stats_line (snd (render fresh)))
             (strip_stats_line (snd (render warm)))));
    test_case "disk tier survives a fresh process-level cache" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let c1 = Batch.create_cache ~dir () in
            let _, s1 = run_batch ~jobs:2 ~cache:c1 () in
            check int "first run analyzes"
              (List.length corpus_sources)
              s1.Batch.st_analyzed;
            (* a new cache value = new memory tier, same directory:
               everything must come off disk, nothing re-analyzed *)
            let c2 = Batch.create_cache ~dir () in
            let _, s2 = run_batch ~jobs:2 ~cache:c2 () in
            check int "second run analyzes nothing" 0 s2.Batch.st_analyzed;
            check int "second run hits disk"
              (List.length corpus_sources)
              s2.Batch.st_disk_hits));
    test_case "key invalidates on text, level and version" `Quick (fun () ->
        let k t = Batch.key ~level:Mira_codegen.Codegen.O1 t in
        check bool "same text, same key" true (k "int x;" = k "int x;");
        check bool "different text" false (k "int x;" = k "int y;");
        check bool "different level" false
          (k "int x;" = Batch.key ~level:Mira_codegen.Codegen.O2 "int x;"));
    test_case "renamed identical source reuses the cache entry" `Quick
      (fun () ->
        let cache = Batch.create_cache () in
        let src = List.assoc "stream" corpus_sources in
        let _, s1 =
          Mira.analyze_batch ~cache [ ("stream.mc", src) ]
        in
        check int "first analyzes" 1 s1.Batch.st_analyzed;
        let results, s2 =
          Mira.analyze_batch ~cache [ ("renamed.mc", src) ]
        in
        check int "rename hits" 1 s2.Batch.st_mem_hits;
        (* and the hit is indistinguishable from a fresh analysis *)
        let fresh, _ = Mira.analyze_batch [ ("renamed.mc", src) ] in
        match (results, fresh) with
        | [ Ok a ], [ Ok b ] ->
            check bool "python under new name" true
              (String.equal a.Batch.a_python b.Batch.a_python)
        | _ -> fail "expected two successful analyses");
    test_case "a bad source fails alone, batch continues" `Quick (fun () ->
        let results, stats =
          Mira.analyze_batch ~jobs:2
            [
              ("good.mc", "void f(int n) { for (int i = 0; i < n; i++) { n = n + 0; } }");
              ("bad.mc", "void g( {");
              ("also_good.mc", List.assoc "saxpy" corpus_sources);
            ]
        in
        check int "one failure" 1 stats.Batch.st_failed;
        match results with
        | [ Ok _; Error ("bad.mc", _); Ok _ ] -> ()
        | _ -> fail "expected ok/error/ok in input order");
    test_case "LRU tier evicts but stays correct" `Quick (fun () ->
        let cache = Batch.create_cache ~capacity:4 () in
        let _, s1 = run_batch ~jobs:1 ~cache () in
        check int "cold analyzes all"
          (List.length corpus_sources)
          s1.Batch.st_analyzed;
        (* capacity 4 << corpus size: most entries were evicted, so a
           second pass re-analyzes at least the evicted majority but
           still returns identical output *)
        let fresh = render (run_batch ~jobs:1 ()) in
        let again = render (run_batch ~jobs:1 ~cache ()) in
        check bool "output unchanged under eviction" true
          (String.equal (fst fresh) (fst again)));
  ]

let () =
  Random.self_init ();
  Alcotest.run "batch" [ ("batch", batch_tests) ]
