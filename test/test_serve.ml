(* The daemon's robustness contract, exercised end to end:

   - codec: request/response round-trips; hostile payloads parse to
     errors, never exceptions; field values cannot forge fields;
   - protocol fuzz: random truncations, bad magic, oversized length
     prefixes, garbled checksums, garbage payloads — after every
     attack the daemon still answers a clean ping;
   - requests: analyze is byte-identical to direct analysis, eval
     matches the library, failures arrive as structured error frames,
     per-request budgets clamp at the server's ceiling, the shared
     cache stays warm across requests;
   - budget isolation: concurrent threads and concurrent requests each
     keep their own fuel/deadline (the slot is per sys-thread, never
     shared through a domain);
   - endpoints: the unix:/tcp: grammar round-trips, bare paths stay
     compatible, malformed endpoints are rejected;
   - pipelining: id=-tagged requests complete out of order and
     re-associate by tag (errors included), untagged requests keep the
     legacy serial semantics and wire format byte for byte;
   - tcp transport: a TCP loopback daemon answers byte-identically to
     the unix path, ephemeral ports resolve, stats advertises
     proto/transport;
   - client pool: sweeps merge in input order whatever the completion
     order, an endpoint dying mid-sweep loses and duplicates nothing,
     and a non-idempotent shutdown is never retried onto a daemon it
     was not sent to;
   - wire faults (pinned by MIRA_FAULT_SEED): slow clients, slow-loris
     stalls, mid-frame disconnects, short writes;
   - bounded admission: offered load beyond max-inflight is shed with
     an explicit overloaded frame;
   - graceful drain: stop (in-process) and SIGTERM (the real binary)
     let in-flight requests finish before exit;
   - cross-process cache locking: GC skips while another process holds
     the directory lock, and two concurrent batch processes sharing
     one cache directory corrupt nothing. *)

open Mira_core

let seed =
  match Sys.getenv_opt "MIRA_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "MIRA_FAULT_SEED must be an integer")
  | None -> 20260806

let faults ?(worker = 0.0) ?(slow = 0.0) ?(slow_ms = 0) ?(net_write = 0.0)
    ?(disconnect = 0.0) () =
  {
    Faults.seed;
    read_p = 0.0;
    write_p = 0.0;
    rename_p = 0.0;
    corrupt_p = 0.0;
    worker_p = worker;
    slow_p = slow;
    slow_ms;
    net_write_p = net_write;
    disconnect_p = disconnect;
    kill_p = 0.0;
  }

let temp_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let mira_exe = Filename.concat (Filename.concat ".." "bin") "mira.exe"

(* run [f ~eps server] against an in-process daemon listening on
   [endpoints]; stopped and joined even when [f] raises.  [eps] are the
   bound endpoints, i.e. a tcp:HOST:0 request arrives resolved. *)
let with_server_eps ?(cfg = fun c -> c) endpoints f =
  let config = cfg (Serve.default_config_endpoints ~endpoints) in
  let server = Serve.create config in
  let stats = ref None in
  let th = Thread.create (fun () -> stats := Some (Serve.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      List.iter
        (function
          | Endpoint.Unix_sock p -> (
              try Sys.remove p with Sys_error _ -> ())
          | Endpoint.Tcp _ -> ())
        endpoints)
    (fun () ->
      let eps = Serve.bound_endpoints server in
      Alcotest.(check bool)
        "daemon is up" true
        (Client.wait_ready (List.hd eps));
      let r = f ~eps server in
      Serve.stop server;
      Thread.join th;
      (r, Option.get !stats))

(* the original single-Unix-socket harness, as a special case *)
let with_server ?cfg f =
  let socket = temp_name "mira-serve" ^ ".sock" in
  with_server_eps ?cfg
    [ Endpoint.Unix_sock socket ]
    (fun ~eps:_ server -> f ~socket server)

let with_conn socket f =
  let fd = Serve.connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let roundtrip_exn ?faults fd req =
  match Serve.roundtrip ?faults fd req with
  | Ok r -> r
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let request ?faults socket req =
  with_conn socket (fun fd -> roundtrip_exn ?faults fd req)

let ping_ok socket =
  Alcotest.(check string)
    "daemon answers a clean ping" "ok" (request socket Serve.Ping).rs_status

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | r -> go (off + r)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.to_string b

let valid_frame payload =
  Serve.magic ^ be32 (String.length payload) ^ Digest.string payload ^ payload

(* bounded wait for a subprocess; SIGKILL + test failure on timeout so
   a wedged daemon can never hang the suite *)
let wait_exit ?(timeout_s = 15.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "subprocess did not exit in time"
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, st -> st
  in
  go ()

let spawn_quiet argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process argv.(0) argv devnull devnull devnull)

let saxpy = Option.get (Mira_corpus.Corpus.find "saxpy")
let stream = Option.get (Mira_corpus.Corpus.find "stream")

let analyze ?(budget = Serve.no_budget) ?(name = "saxpy") ?(source = saxpy) ()
    =
  Serve.Analyze { an_name = name; an_source = source; an_budget = budget }

let code resp = Serve.field resp "code"

(* ---------- codec ---------- *)

let codec_tests =
  let open Alcotest in
  [
    test_case "request encode/parse round-trips" `Quick (fun () ->
        let reqs =
          [
            Serve.Ping;
            Serve.Stats;
            Serve.Shutdown;
            analyze ();
            analyze
              ~budget:
                {
                  rq_fuel = Some 5;
                  rq_timeout_ms = Some 7;
                  rq_depth = Some 9;
                }
              ();
            Serve.Eval
              {
                ev_name = "stream";
                ev_source = stream;
                ev_function = "stream_triad";
                ev_params = [ ("n", 1000); ("ntimes", 3) ];
                ev_budget = Serve.no_budget;
              };
          ]
        in
        List.iter
          (fun req ->
            match Serve.parse_request (Serve.encode_request req) with
            | Ok req' -> check bool "round-trips" true (req = req')
            | Error m -> failf "parse failed: %s" m)
          reqs);
    test_case "hostile payloads parse to errors, not exceptions" `Quick
      (fun () ->
        let bad =
          [
            "";
            "mira/1";
            "mira/9 ping\n\n";
            "http/1.1 GET\n\n";
            "mira/1 launch-missiles\n\n";
            "mira/1 eval\nfunction=f\nparam=zz\n\nint f() { return 0; }";
            "mira/1 eval\n\nno function field";
            "mira/1 analyze\nfuel=-3\n\nx";
            "mira/1 analyze\nfuel=1e9\n\nx";
            "mira/1 analyze\nnot a field line\n\nx";
          ]
        in
        List.iter
          (fun payload ->
            match Serve.parse_request payload with
            | Error _ -> ()
            | Ok _ -> failf "accepted hostile payload %S" payload)
          bad);
    test_case "field values cannot forge extra fields" `Quick (fun () ->
        let encoded =
          Serve.encode_response
            {
              rs_status = "ok";
              rs_fields = [ ("warning", "a\nevil=1") ];
              rs_body = "";
            }
        in
        match Serve.parse_response encoded with
        | Error m -> failf "parse failed: %s" m
        | Ok resp ->
            check (option string) "newline flattened" (Some "a evil=1")
              (Serve.field resp "warning");
            check bool "no forged field" true (Serve.field resp "evil" = None));
  ]

(* ---------- protocol fuzz ---------- *)

let fuzz_tests =
  let open Alcotest in
  [
    test_case "daemon survives the malformed-frame attack suite" `Quick
      (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c -> { c with Serve.cfg_max_frame_bytes = 64 * 1024 })
            (fun ~socket server ->
              let rng = Random.State.make [| seed |] in
              let ping_payload = Serve.encode_request Serve.Ping in
              let attacks =
                [|
                  (* random garbage *)
                  (fun () ->
                    String.init
                      (1 + Random.State.int rng 64)
                      (fun _ -> Char.chr (Random.State.int rng 256)));
                  (* bad magic *)
                  (fun () -> "BOGUS\n" ^ be32 4 ^ String.make 20 'x');
                  (* oversized length prefix *)
                  (fun () ->
                    Serve.magic
                    ^ be32 (64 * 1024 * 1024)
                    ^ String.make 16 '\x00');
                  (* truncated valid frame *)
                  (fun () ->
                    let f = valid_frame ping_payload in
                    String.sub f 0
                      (1 + Random.State.int rng (String.length f - 1)));
                  (* garbled checksum: flip one payload byte *)
                  (fun () ->
                    let f = Bytes.of_string (valid_frame ping_payload) in
                    let i = Bytes.length f - 1 - Random.State.int rng 4 in
                    Bytes.set f i
                      (Char.chr (Char.code (Bytes.get f i) lxor 0xff));
                    Bytes.to_string f);
                  (* well-formed frames, garbage payloads *)
                  (fun () -> valid_frame "mira/1 no-such-verb\n\n");
                  (fun () -> valid_frame "complete nonsense");
                |]
              in
              for i = 0 to 29 do
                (match Serve.connect socket with
                | fd ->
                    (try write_all fd (attacks.(i mod Array.length attacks) ())
                     with Unix.Unix_error _ ->
                       (* the server already dropped us; that is a valid
                          answer to an attack *)
                       ());
                    (try Unix.close fd with Unix.Unix_error _ -> ())
                | exception Unix.Unix_error _ ->
                    failf "attack %d: daemon stopped accepting" i);
                (* the contract: a clean request succeeds after every
                   single attack *)
                ping_ok socket
              done;
              let s = Serve.stats server in
              check bool "protocol errors were counted" true
                (s.Serve.sv_protocol_errors > 0);
              check bool "every ping was served" true (s.Serve.sv_served >= 30))
        in
        check bool "final stats carry the damage" true
          (final.Serve.sv_protocol_errors > 0));
    test_case "checksum mismatch is answered, then the connection dropped"
      `Quick (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              with_conn socket (fun fd ->
                  (* flip a payload byte: the digest covers only the
                     payload, so this mismatch is indistinguishable
                     from a corrupted length prefix — the frame
                     boundary cannot be trusted, and the server must
                     resynchronize by dropping the connection (after a
                     best-effort error frame) *)
                  let f =
                    Bytes.of_string
                      (valid_frame (Serve.encode_request Serve.Ping))
                  in
                  Bytes.set f
                    (Bytes.length f - 1)
                    (Char.chr
                       (Char.code (Bytes.get f (Bytes.length f - 1)) lxor 0xff));
                  write_all fd (Bytes.to_string f);
                  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
                  (match Serve.read_frame fd with
                  | Ok payload -> (
                      match Serve.parse_response payload with
                      | Ok resp ->
                          Alcotest.(check string)
                            "error frame" "error" resp.rs_status;
                          Alcotest.(check (option string))
                            "bad-frame code" (Some "bad-frame") (code resp)
                      | Error m -> failf "unparseable error frame: %s" m)
                  | Error (Serve.Closed | Serve.Truncated) ->
                      (* dropping without the courtesy frame is legal *)
                      ()
                  | Error e ->
                      failf "expected an error frame or a drop, got %s"
                        (Serve.frame_error_to_string e));
                  (match Serve.read_frame fd with
                  | Error Serve.Closed -> ()
                  | Error e ->
                      failf "expected a dropped connection, got %s"
                        (Serve.frame_error_to_string e)
                  | Ok _ -> fail "server kept a desynced connection alive"));
              (* a fresh connection is served as if nothing happened *)
              ping_ok socket)
        in
        ());
  ]

(* ---------- requests ---------- *)

let float_of_field resp k =
  match Serve.field resp k with
  | Some v -> float_of_string v
  | None -> Alcotest.failf "response is missing field %s" k

let request_tests =
  let open Alcotest in
  [
    test_case "analyze is byte-identical to direct analysis" `Quick
      (fun () ->
        let (), final =
          with_server (fun ~socket _server ->
              let resp = request socket (analyze ()) in
              check string "ok" "ok" resp.rs_status;
              let direct =
                Mira.analyze ~level:Mira_codegen.Codegen.O1
                  ~source_name:"saxpy" saxpy
              in
              check string "same emitted Python"
                (Mira.python_model direct)
                resp.rs_body;
              check (option string) "function count"
                (Some
                   (string_of_int
                      (List.length direct.Mira.model.Model_ir.functions)))
                (Serve.field resp "functions"))
        in
        check bool "served" true (final.Serve.sv_served >= 1));
    test_case "eval matches the library's numbers" `Quick (fun () ->
        let env = [ ("n", 64); ("reps", 2) ] in
        let (), _ =
          with_server (fun ~socket _server ->
              let resp =
                request socket
                  (Serve.Eval
                     {
                       ev_name = "saxpy";
                       ev_source = saxpy;
                       ev_function = "saxpy_chain";
                       ev_params = env;
                       ev_budget = Serve.no_budget;
                     })
              in
              check string "ok" "ok" resp.rs_status;
              let direct =
                Mira.fpi
                  (Mira.analyze ~source_name:"saxpy" saxpy)
                  ~fname:"saxpy_chain" ~env
              in
              check (float 1e-6) "fpi field" direct (float_of_field resp "fpi");
              check bool "counts body is non-empty" true
                (String.length resp.rs_body > 0))
        in
        ());
    test_case "failures arrive as structured error frames" `Quick (fun () ->
        let (), final =
          with_server (fun ~socket _server ->
              (* malformed source *)
              let resp =
                request socket (analyze ~source:"int f( {" ~name:"bad" ())
              in
              check string "error status" "error" resp.rs_status;
              check (option string) "analysis code" (Some "analysis")
                (code resp);
              check bool "message present" true
                (Serve.field resp "message" <> None);
              (* eval without its required parameter *)
              let resp =
                request socket
                  (Serve.Eval
                     {
                       ev_name = "saxpy";
                       ev_source = saxpy;
                       ev_function = "saxpy_chain";
                       ev_params = [];
                       ev_budget = Serve.no_budget;
                     })
              in
              check string "error status" "error" resp.rs_status;
              check (option string) "bad-request code" (Some "bad-request")
                (code resp);
              (* and the daemon is unimpressed *)
              ping_ok socket)
        in
        check bool "failures counted" true (final.Serve.sv_failed >= 2));
    test_case "a request can tighten its budget" `Quick (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              let resp =
                request socket
                  (analyze
                     ~budget:
                       {
                         rq_fuel = Some 10;
                         rq_timeout_ms = None;
                         rq_depth = None;
                       }
                     ())
              in
              check string "error status" "error" resp.rs_status;
              check (option string) "budget code" (Some "budget") (code resp);
              let resp =
                request socket
                  (analyze
                     ~budget:
                       {
                         rq_fuel = None;
                         rq_timeout_ms = Some 0;
                         rq_depth = None;
                       }
                     ())
              in
              check string "error status" "error" resp.rs_status;
              check bool "deadline overrun code" true
                (match code resp with
                | Some ("timeout" | "budget") -> true
                | _ -> false);
              ping_ok socket)
        in
        ());
    test_case "a request cannot exceed the server's ceiling" `Quick
      (fun () ->
        let (), _ =
          with_server
            ~cfg:(fun c ->
              {
                c with
                Serve.cfg_limits =
                  { c.Serve.cfg_limits with Limits.fuel = Some 10 };
              })
            (fun ~socket _server ->
              (* the request asks for a million fuel; the server's
                 ceiling of 10 wins *)
              let resp =
                request socket
                  (analyze
                     ~budget:
                       {
                         rq_fuel = Some 1_000_000;
                         rq_timeout_ms = None;
                         rq_depth = None;
                       }
                     ())
              in
              check string "error status" "error" resp.rs_status;
              check (option string) "clamped to the ceiling" (Some "budget")
                (code resp))
        in
        ());
    test_case "injected worker faults become error frames" `Quick (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c ->
              { c with Serve.cfg_faults = Some (faults ~worker:1.0 ()) })
            (fun ~socket _server ->
              let resp = request socket (analyze ()) in
              check string "error status" "error" resp.rs_status;
              check (option string) "injected code" (Some "injected")
                (code resp);
              ping_ok socket)
        in
        check bool "daemon survived" true (final.Serve.sv_served >= 1));
    test_case "the cache stays warm across requests" `Quick (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c ->
              { c with Serve.cfg_cache = Some (Batch.create_cache ()) })
            (fun ~socket _server ->
              let first = request socket (analyze ()) in
              let second = request socket (analyze ()) in
              check string "ok" "ok" second.rs_status;
              check (option string) "first is a miss" (Some "0")
                (Serve.field first "cached");
              check (option string) "second is a hit" (Some "1")
                (Serve.field second "cached");
              check string "hit is byte-identical" first.rs_body
                second.rs_body)
        in
        check bool "one analysis" true (final.Serve.sv_analyzed = 1);
        check bool "one memory hit" true (final.Serve.sv_mem_hits >= 1));
    test_case "stats responses expose server health" `Quick (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              ignore (request socket (analyze ()));
              let resp = request socket Serve.Stats in
              check string "ok" "ok" resp.rs_status;
              let kv =
                List.filter_map
                  (fun line ->
                    match String.index_opt line '=' with
                    | Some i ->
                        Some
                          ( String.sub line 0 i,
                            String.sub line (i + 1)
                              (String.length line - i - 1) )
                    | None -> None)
                  (String.split_on_char '\n' resp.rs_body)
              in
              let get k =
                match List.assoc_opt k kv with
                | Some v -> int_of_string v
                | None -> failf "stats body is missing %s" k
              in
              check bool "uptime is sane" true (get "uptime-ms" >= 0);
              check bool "served counts the analyze" true (get "served" >= 1);
              check bool "hwm at least one" true (get "inflight-hwm" >= 1);
              check bool "analyzed counted" true (get "analyzed" >= 1);
              check bool "shed starts at zero" true (get "shed" = 0))
        in
        ());
  ]

(* ---------- budget isolation ----------

   The daemon serves every connection on a [Thread.create] thread, all
   sharing domain 0.  The current-budget slot therefore must be
   per-thread: when it lived in [Domain.DLS] (shared by all of a
   domain's sys-threads), concurrent requests overwrote each other's
   budget — one request's ticks burned another's fuel, and a restore
   firing mid-request dropped a live budget back to the unlimited
   default, letting a hostile source escape its budget entirely. *)

let budget_isolation_tests =
  let open Alcotest in
  [
    test_case "concurrent threads keep their own budgets" `Quick (fun () ->
        (* Deterministic interleaving: A installs its tight budget,
           then B installs a roomy one, and only then does A tick.
           When the slot lived in Domain.DLS — which every sys-thread
           of a domain shares — B's install overwrote A's, so A burned
           B's fuel and its own 100-fuel cap never fired; and once A's
           restore ran, B was left ticking the permissive default, so
           its spend read back as zero.  Per-thread slots keep each
           install private to its thread whatever the interleaving. *)
        ignore (Limits.Budget.spent ());
        (* primed, as a long-lived accept thread's slot would be *)
        let a_installed = Atomic.make false in
        let b_installed = Atomic.make false in
        let a_finished = Atomic.make false in
        let await flag =
          while not (Atomic.get flag) do
            Thread.yield ()
          done
        in
        let a_result = ref (Error "thread A never ran") in
        let b_result = ref (Error "thread B never ran") in
        (* A: 100 fuel, burned exactly; the 101st tick must raise on
           A's own budget even though B installed a bigger one after
           A did and before A ticked *)
        let a =
          Thread.create
            (fun () ->
              (a_result :=
                 try
                   Limits.Budget.install
                     (Limits.Budget.make ~fuel:100 ())
                     (fun () ->
                       Atomic.set a_installed true;
                       await b_installed;
                       let burned = ref 0 in
                       match
                         for _ = 1 to 101 do
                           Limits.Budget.tick ();
                           incr burned
                         done
                       with
                       | () ->
                           Error
                             "101 ticks succeeded on a 100-fuel budget \
                              (escaped into another thread's budget)"
                       | exception
                           Limits.Budget.Exhausted Limits.Budget.Fuel
                         ->
                           if !burned = 100 then Ok ()
                           else
                             Error
                               (Printf.sprintf
                                  "exhausted after %d ticks, not 100"
                                  !burned))
                 with e -> Error (Printexc.to_string e));
              Atomic.set a_finished true)
            ()
        in
        (* B: plenty of fuel; its spend must be exactly its own ticks
           even though A exhausted and restored in between — foreign
           ticks (or a clobbered slot reading back zero) is the bug *)
        let b =
          Thread.create
            (fun () ->
              b_result :=
                try
                  await a_installed;
                  Limits.Budget.install
                    (Limits.Budget.make ~fuel:10_000_000 ())
                    (fun () ->
                      Atomic.set b_installed true;
                      await a_finished;
                      for _ = 1 to 1_000_000 do
                        Limits.Budget.tick ()
                      done;
                      let spent = Limits.Budget.spent () in
                      if spent = 1_000_000 then Ok ()
                      else
                        Error
                          (Printf.sprintf
                             "budget saw foreign ticks: spent=%d" spent))
                with e -> Error (Printexc.to_string e))
            ()
        in
        Thread.join a;
        Thread.join b;
        (match !a_result with
        | Ok () -> ()
        | Error m -> failf "thread A: %s" m);
        match !b_result with
        | Ok () -> ()
        | Error m -> failf "thread B: %s" m);
    test_case "concurrent requests are budgeted independently" `Quick
      (fun () ->
        let (), _ =
          with_server
            ~cfg:(fun c -> { c with Serve.cfg_max_inflight = 16 })
            (fun ~socket _server ->
              (* four strangled requests (fuel 10 → budget error)
                 racing four unlimited ones (→ ok); each must get its
                 own verdict whatever the interleaving *)
              let n = 8 in
              let results = Array.make n None in
              let threads =
                List.init n (fun i ->
                    Thread.create
                      (fun i ->
                        let budget =
                          if i mod 2 = 0 then
                            {
                              Serve.rq_fuel = Some 10;
                              rq_timeout_ms = None;
                              rq_depth = None;
                            }
                          else Serve.no_budget
                        in
                        results.(i) <-
                          Some
                            (try Ok (request socket (analyze ~budget ()))
                             with e -> Error (Printexc.to_string e)))
                      i)
              in
              List.iter Thread.join threads;
              Array.iteri
                (fun i r ->
                  match r with
                  | None -> failf "request %d never finished" i
                  | Some (Error m) -> failf "request %d: %s" i m
                  | Some (Ok (resp : Serve.response)) ->
                      if i mod 2 = 0 then begin
                        check string
                          (Printf.sprintf "request %d is budget-limited" i)
                          "error" resp.rs_status;
                        check (option string)
                          (Printf.sprintf "request %d budget code" i)
                          (Some "budget") (code resp)
                      end
                      else
                        check string
                          (Printf.sprintf "request %d runs to completion" i)
                          "ok" resp.rs_status)
                results)
        in
        ());
  ]

(* ---------- wire faults ---------- *)

let wire_tests =
  let open Alcotest in
  [
    test_case "a slow client is served, not dropped" `Quick (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              let resp =
                request ~faults:(faults ~slow:1.0 ~slow_ms:60 ()) socket
                  Serve.Ping
              in
              check string "ok despite the stall" "ok" resp.rs_status)
        in
        ());
    test_case "a slow-loris client is disconnected" `Quick (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c -> { c with Serve.cfg_idle_timeout_ms = 150 })
            (fun ~socket _server ->
              with_conn socket (fun fd ->
                  (* send three bytes of magic, then stall forever *)
                  write_all fd (String.sub Serve.magic 0 3);
                  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
                  let buf = Bytes.create 64 in
                  match Unix.read fd buf 0 64 with
                  | 0 -> () (* server gave up on us: exactly right *)
                  | _ -> (
                      (* an error frame first is fine too, but the
                         server must then close *)
                      match Unix.read fd buf 0 64 with
                      | 0 -> ()
                      | _ -> fail "server kept a stalled connection open"
                      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _)
                        ->
                          fail "server never disconnected the slow-loris")
                  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                      fail "server never disconnected the slow-loris");
              ping_ok socket)
        in
        check bool "the stalled connection never blocked real work" true
          (final.Serve.sv_served >= 1));
    test_case "mid-frame disconnect leaves the daemon standing" `Quick
      (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              for _ = 1 to 3 do
                (match
                   with_conn socket (fun fd ->
                       Serve.write_frame
                         ~faults:(faults ~disconnect:1.0 ())
                         fd
                         (Serve.encode_request (analyze ())))
                 with
                | () -> fail "disconnect fault did not fire"
                | exception Faults.Injected _ -> ());
                ping_ok socket
              done)
        in
        ());
    test_case "a short write becomes a truncated frame, not a hang" `Quick
      (fun () ->
        let (), final =
          with_server (fun ~socket _server ->
              (match
                 with_conn socket (fun fd ->
                     Serve.write_frame
                       ~faults:(faults ~net_write:1.0 ())
                       fd
                       (Serve.encode_request (analyze ())))
               with
              | () -> fail "net_write fault did not fire"
              | exception Faults.Injected _ -> ());
              ping_ok socket)
        in
        check bool "truncation counted" true
          (final.Serve.sv_protocol_errors >= 1));
  ]

(* ---------- overload ---------- *)

let overload_tests =
  let open Alcotest in
  [
    test_case "offered load beyond max-inflight is shed" `Quick (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c -> { c with Serve.cfg_max_inflight = 1 })
            (fun ~socket _server ->
              with_conn socket (fun fd1 ->
                  (* fd1's handler thread stays attached to the
                     connection after answering, so it occupies the
                     only slot *)
                  let r1 = roundtrip_exn fd1 Serve.Ping in
                  check string "first client served" "ok" r1.rs_status;
                  (* the shed frame arrives unsolicited, at accept
                     time: no request needs to be written at all *)
                  with_conn socket (fun fd2 ->
                      Unix.setsockopt_float fd2 Unix.SO_RCVTIMEO 5.0;
                      match Serve.read_frame fd2 with
                      | Ok payload -> (
                          match Serve.parse_response payload with
                          | Ok r2 ->
                              check string "second client shed" "overloaded"
                                r2.rs_status;
                              check (option string) "told to retry" (Some "1")
                                (Serve.field r2 "retry")
                          | Error m -> failf "bad shed frame: %s" m)
                      | Error e ->
                          failf "no shed frame: %s"
                            (Serve.frame_error_to_string e)));
              (* slot freed: the daemon recovers on its own *)
              let deadline = Unix.gettimeofday () +. 5.0 in
              let rec recovered () =
                let r =
                  try with_conn socket (fun fd -> Serve.roundtrip fd Serve.Ping)
                  with Unix.Unix_error _ -> Error "connect"
                in
                match r with
                | Ok { rs_status = "ok"; _ } -> true
                | _ ->
                    Unix.gettimeofday () < deadline
                    && begin
                         Unix.sleepf 0.02;
                         recovered ()
                       end
              in
              check bool "accepts again after the slot frees" true
                (recovered ()))
        in
        check bool "shed counted" true (final.Serve.sv_shed >= 1);
        check bool "hwm respected the cap" true
          (final.Serve.sv_inflight_hwm <= 1));
  ]

(* ---------- graceful shutdown ---------- *)

let shutdown_tests =
  let open Alcotest in
  [
    test_case "stop drains the in-flight request first" `Quick (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c ->
              (* every analysis stalls 300 ms in the worker, so the
                 request is reliably in flight when stop lands *)
              { c with Serve.cfg_faults = Some (faults ~slow:1.0 ~slow_ms:300 ()) })
            (fun ~socket server ->
              with_conn socket (fun fd ->
                  Serve.write_frame fd
                    (Serve.encode_request (analyze ()));
                  Unix.sleepf 0.1;
                  Serve.stop server;
                  match Serve.read_frame fd with
                  | Ok payload -> (
                      match Serve.parse_response payload with
                      | Ok resp ->
                          check string "in-flight request completed" "ok"
                            resp.rs_status
                      | Error m -> failf "bad drain response: %s" m)
                  | Error e ->
                      failf "drain dropped the in-flight request: %s"
                        (Serve.frame_error_to_string e)))
        in
        check bool "request counted as served" true
          (final.Serve.sv_served >= 1));
    test_case "shutdown request stops the daemon" `Quick (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              let resp = request socket Serve.Shutdown in
              check string "acknowledged" "ok" resp.rs_status;
              (* serve returns on its own; with_server's join below
                 would hang forever if it did not *)
              let deadline = Unix.gettimeofday () +. 5.0 in
              let rec gone () =
                match request socket Serve.Ping with
                | _ ->
                    Unix.gettimeofday () < deadline
                    && begin
                         Unix.sleepf 0.05;
                         gone ()
                       end
                | exception _ -> true
              in
              check bool "socket goes quiet" true (gone ()))
        in
        ());
    test_case "SIGTERM drains the real binary" `Quick (fun () ->
        let socket = temp_name "mira-sigterm" ^ ".sock" in
        let pid =
          spawn_quiet
            [|
              mira_exe;
              "serve";
              "--socket";
              socket;
              "--faults";
              Printf.sprintf "seed=%d,slow=1,slow_ms=300" seed;
            |]
        in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
             with Unix.Unix_error _ -> ());
            try Sys.remove socket with Sys_error _ -> ())
          (fun () ->
            check bool "daemon came up" true (Serve.wait_ready socket);
            with_conn socket (fun fd ->
                Serve.write_frame fd (Serve.encode_request (analyze ()));
                Unix.sleepf 0.1;
                Unix.kill pid Sys.sigterm;
                (match Serve.read_frame fd with
                | Ok payload -> (
                    match Serve.parse_response payload with
                    | Ok resp ->
                        check string "in-flight request completed" "ok"
                          resp.rs_status
                    | Error m -> failf "bad drain response: %s" m)
                | Error e ->
                    failf "SIGTERM dropped the in-flight request: %s"
                      (Serve.frame_error_to_string e));
                match wait_exit pid with
                | Unix.WEXITED 0 -> ()
                | Unix.WEXITED n -> failf "daemon exited %d" n
                | Unix.WSIGNALED s -> failf "daemon killed by signal %d" s
                | Unix.WSTOPPED _ -> fail "daemon stopped")));
  ]

(* ---------- cross-process cache locking ---------- *)

let disk_entries dir =
  if Sys.file_exists dir then
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           Filename.check_suffix f ".model" || Filename.check_suffix f ".fnmodel")
  else []

let locking_tests =
  let open Alcotest in
  [
    test_case "GC skips while another process holds the lock" `Quick
      (fun () ->
        let dir = temp_name "mira-lock-cache" in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let cache = Batch.create_cache ~dir () in
            let results, _ =
              Batch.run ~cache
                [
                  { Batch.src_name = "saxpy"; src_text = saxpy };
                  { Batch.src_name = "stream"; src_text = stream };
                ]
            in
            check bool "entries analyzed" true
              (List.for_all Result.is_ok results);
            let before = List.length (disk_entries dir) in
            check bool "entries on disk" true (before > 0);
            match Unix.fork () with
            | 0 ->
                (* child: grab the exclusive lock the way a foreign
                   process would, hold it past the parent's GC attempt *)
                (try
                   let fd =
                     Unix.openfile
                       (Filename.concat dir Batch.lock_file_name)
                       [ Unix.O_CREAT; Unix.O_RDWR ]
                       0o644
                   in
                   Unix.lockf fd Unix.F_LOCK 0;
                   Unix.sleepf 1.5
                 with _ -> ());
                Unix._exit 0
            | child ->
                Unix.sleepf 0.3;
                let removed, freed = Batch.gc_disk ~max_bytes:0 cache in
                check int "no entries removed under a foreign lock" 0 removed;
                check int "no bytes freed" 0 freed;
                check int "entries untouched" before
                  (List.length (disk_entries dir));
                ignore (wait_exit child);
                let removed, _ = Batch.gc_disk ~max_bytes:0 cache in
                check bool "GC proceeds once the lock is free" true
                  (removed > 0);
                check int "entries evicted" 0
                  (List.length (disk_entries dir))))
        ;
    test_case "two batch processes share one cache without corruption"
      `Quick (fun () ->
        let src_dir = temp_name "mira-shared-src" in
        let cache_dir = temp_name "mira-shared-cache" in
        Fun.protect
          ~finally:(fun () ->
            rm_rf src_dir;
            rm_rf cache_dir)
          (fun () ->
            Unix.mkdir src_dir 0o755;
            let sources =
              List.filteri (fun i _ -> i < 4) Mira_corpus.Corpus.all
            in
            List.iter
              (fun (name, text) ->
                let oc =
                  open_out (Filename.concat src_dir (name ^ ".mc"))
                in
                output_string oc text;
                close_out oc)
              sources;
            let spawn () =
              spawn_quiet
                [|
                  mira_exe;
                  "batch";
                  src_dir;
                  "--jobs";
                  "2";
                  "--cache";
                  "--cache-dir";
                  cache_dir;
                |]
            in
            let p1 = spawn () in
            let p2 = spawn () in
            let s1 = wait_exit ~timeout_s:60.0 p1 in
            let s2 = wait_exit ~timeout_s:60.0 p2 in
            check bool "first process succeeded" true (s1 = Unix.WEXITED 0);
            check bool "second process succeeded" true (s2 = Unix.WEXITED 0);
            (* the surviving cache must be fully usable: everything the
               two writers left behind reads back clean *)
            let cache = Batch.create_cache ~dir:cache_dir () in
            let results, stats =
              Batch.run ~cache
                (List.map
                   (fun (name, text) ->
                     { Batch.src_name = name; src_text = text })
                   sources)
            in
            check bool "all sources analyze" true
              (List.for_all Result.is_ok results);
            check int "no corrupt entries" 0 stats.Batch.st_cache_corrupt;
            check bool "the shared entries actually served" true
              (stats.Batch.st_disk_hits + stats.Batch.st_fn_disk_hits > 0);
            (* and byte-identical to a cold analysis *)
            match (results, sources) with
            | Ok a :: _, (name, text) :: _ ->
                let direct =
                  Mira.python_model (Mira.analyze ~source_name:name text)
                in
                check string "cache round-trip is byte-identical" direct
                  a.Batch.a_python
            | _ -> fail "no results"));
  ]

(* ---------- endpoints ---------- *)

let endpoint_tests =
  let open Alcotest in
  [
    test_case "the endpoint grammar parses and round-trips" `Quick (fun () ->
        let ok s e =
          match Endpoint.parse s with
          | Ok e' ->
              check bool (s ^ " parses as expected") true (Endpoint.equal e e')
          | Error m -> failf "%s rejected: %s" s m
        in
        ok "unix:/tmp/m.sock" (Endpoint.Unix_sock "/tmp/m.sock");
        (* a bare path is what every pre-endpoint --socket flag passed *)
        ok "/tmp/m.sock" (Endpoint.Unix_sock "/tmp/m.sock");
        ok "mira.sock" (Endpoint.Unix_sock "mira.sock");
        ok "tcp:127.0.0.1:7000" (Endpoint.Tcp ("127.0.0.1", 7000));
        ok "tcp:localhost:0" (Endpoint.Tcp ("localhost", 0));
        List.iter
          (fun e ->
            match Endpoint.parse (Endpoint.to_string e) with
            | Ok e' ->
                check bool
                  (Endpoint.to_string e ^ " round-trips")
                  true (Endpoint.equal e e')
            | Error m -> failf "round-trip rejected: %s" m)
          [
            Endpoint.Unix_sock "a.sock";
            Endpoint.Tcp ("::1", 80);
            Endpoint.Tcp ("h", 65535);
          ];
        check string "unix transport" "unix"
          (Endpoint.transport (Endpoint.Unix_sock "x"));
        check string "tcp transport" "tcp"
          (Endpoint.transport (Endpoint.Tcp ("h", 1))));
    test_case "malformed endpoints are rejected with a reason" `Quick
      (fun () ->
        List.iter
          (fun s ->
            match Endpoint.parse s with
            | Error m ->
                check bool "the reason is not empty" true
                  (String.length m > 0)
            | Ok _ -> failf "accepted malformed endpoint %S" s)
          [
            "";
            "unix:";
            "tcp:";
            "tcp:host-without-port";
            "tcp::7000";
            "tcp:h:notaport";
            "tcp:h:-1";
            "tcp:h:65536";
          ]);
  ]

(* ---------- pipelining ---------- *)

let pipeline_tests =
  let open Alcotest in
  [
    test_case "untagged payloads keep the legacy wire format" `Quick
      (fun () ->
        (* the pre-pipelining format, byte for byte: old clients must
           interoperate with a new daemon without renegotiation *)
        check string "legacy ping payload" "mira/1 ping\n\n"
          (Serve.encode_request Serve.Ping);
        check (option string) "tagged payloads carry their id" (Some "x7")
          (Serve.payload_id (Serve.encode_request ~id:"x7" Serve.Ping));
        check (option string) "untagged payloads carry none" None
          (Serve.payload_id (Serve.encode_request Serve.Ping)));
    test_case "tagged requests complete out of order, re-associated by id"
      `Quick (fun () ->
        let (), final =
          with_server
            ~cfg:(fun c ->
              (* the worker slow site stalls every analysis 300 ms but
                 leaves ping untouched, so completion order is forced:
                 whichever request was submitted first, the ping answers
                 first iff the connection really is pipelined *)
              {
                c with
                Serve.cfg_faults = Some (faults ~slow:1.0 ~slow_ms:300 ());
              })
            (fun ~socket _server ->
              with_conn socket (fun fd ->
                  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
                  Serve.write_frame fd
                    (Serve.encode_request ~id:"slow" (analyze ()));
                  Serve.write_frame fd
                    (Serve.encode_request ~id:"fast" Serve.Ping);
                  let read_tagged () =
                    match Serve.read_frame fd with
                    | Ok payload -> (
                        match Serve.parse_response payload with
                        | Ok resp -> (
                            match Serve.field resp "id" with
                            | Some id -> (id, resp)
                            | None -> fail "response lost its id tag")
                        | Error m -> failf "bad response: %s" m)
                    | Error e ->
                        failf "read failed: %s"
                          (Serve.frame_error_to_string e)
                  in
                  let id1, r1 = read_tagged () in
                  let id2, r2 = read_tagged () in
                  check string "the ping overtakes the stalled analyze"
                    "fast" id1;
                  check string "the analyze still arrives" "slow" id2;
                  check string "ping ok" "ok" r1.rs_status;
                  check string "analyze ok" "ok" r2.rs_status;
                  check bool "analyze kept its body" true
                    (String.length r2.rs_body > 0)))
        in
        check bool "both served" true (final.Serve.sv_served >= 2));
    test_case "a bad pipelined request keeps its id on the error frame"
      `Quick (fun () ->
        let (), _ =
          with_server (fun ~socket _server ->
              with_conn socket (fun fd ->
                  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
                  write_all fd
                    (valid_frame "mira/1 launch-missiles\nid=tag-7\n\n");
                  match Serve.read_frame fd with
                  | Ok payload -> (
                      match Serve.parse_response payload with
                      | Ok resp ->
                          check string "error status" "error" resp.rs_status;
                          check (option string)
                            "id echoed so the client can re-associate"
                            (Some "tag-7") (Serve.field resp "id")
                      | Error m -> failf "bad error frame: %s" m)
                  | Error e ->
                      failf "no error frame: %s"
                        (Serve.frame_error_to_string e));
              ping_ok socket)
        in
        ());
    test_case "untagged requests stay strictly serial" `Quick (fun () ->
        let (), _ =
          with_server
            ~cfg:(fun c ->
              {
                c with
                Serve.cfg_faults = Some (faults ~slow:1.0 ~slow_ms:200 ());
              })
            (fun ~socket _server ->
              with_conn socket (fun fd ->
                  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
                  (* same shape as the pipelined test, untagged: now the
                     slow analyze must answer first — the legacy
                     serial semantics are preserved exactly *)
                  Serve.write_frame fd (Serve.encode_request (analyze ()));
                  Serve.write_frame fd (Serve.encode_request Serve.Ping);
                  let read_resp () =
                    match Serve.read_frame fd with
                    | Ok payload -> (
                        match Serve.parse_response payload with
                        | Ok resp -> resp
                        | Error m -> failf "bad response: %s" m)
                    | Error e ->
                        failf "read failed: %s"
                          (Serve.frame_error_to_string e)
                  in
                  let r1 = read_resp () in
                  let r2 = read_resp () in
                  check bool "first answer is the analyze" true
                    (Serve.field r1 "functions" <> None);
                  check bool "second answer is the ping" true
                    (Serve.field r2 "pong" <> None)))
        in
        ());
  ]

(* ---------- tcp transport ---------- *)

let transport_tests =
  let open Alcotest in
  let via ep req =
    let fd = Endpoint.connect ~io_timeout_ms:5000 ep in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Serve.roundtrip fd req with
        | Ok r -> r
        | Error m -> Alcotest.failf "%s: %s" (Endpoint.to_string ep) m)
  in
  [
    test_case "tcp loopback responses are byte-identical to the unix path"
      `Quick (fun () ->
        let sock = temp_name "mira-tcp" ^ ".sock" in
        let (), _ =
          with_server_eps
            [ Endpoint.Unix_sock sock; Endpoint.Tcp ("127.0.0.1", 0) ]
            (fun ~eps _server ->
              let tcp =
                List.find
                  (function Endpoint.Tcp _ -> true | _ -> false)
                  eps
              in
              (match tcp with
              | Endpoint.Tcp (_, port) ->
                  check bool "the ephemeral port was resolved" true (port > 0)
              | Endpoint.Unix_sock _ -> assert false);
              List.iter
                (fun req ->
                  let u = via (Endpoint.Unix_sock sock) req in
                  let t = via tcp req in
                  check string "identical response payloads"
                    (Serve.encode_response u)
                    (Serve.encode_response t))
                [
                  Serve.Ping;
                  analyze ();
                  Serve.Eval
                    {
                      ev_name = "saxpy";
                      ev_source = saxpy;
                      ev_function = "saxpy_chain";
                      ev_params = [ ("n", 64); ("reps", 2) ];
                      ev_budget = Serve.no_budget;
                    };
                ])
        in
        ());
    test_case "stats advertises proto and transport" `Quick (fun () ->
        let sock = temp_name "mira-tcp-stats" ^ ".sock" in
        let (), _ =
          with_server_eps
            [ Endpoint.Unix_sock sock; Endpoint.Tcp ("127.0.0.1", 0) ]
            (fun ~eps _server ->
              let tcp =
                List.find
                  (function Endpoint.Tcp _ -> true | _ -> false)
                  eps
              in
              let su = via (Endpoint.Unix_sock sock) Serve.Stats in
              let st = via tcp Serve.Stats in
              check (option string) "proto over unix" (Some "mira/1")
                (Serve.field su "proto");
              check (option string) "unix transport" (Some "unix")
                (Serve.field su "transport");
              check (option string) "proto over tcp" (Some "mira/1")
                (Serve.field st "proto");
              check (option string) "tcp transport" (Some "tcp")
                (Serve.field st "transport"))
        in
        ());
  ]

(* ---------- client pool ---------- *)

let eval_req n =
  Serve.Eval
    {
      ev_name = "saxpy";
      ev_source = saxpy;
      ev_function = "saxpy_chain";
      ev_params = [ ("n", n); ("reps", 2) ];
      ev_budget = Serve.no_budget;
    }

let expected_fpi =
  let direct = lazy (Mira.analyze ~source_name:"saxpy" saxpy) in
  fun n ->
    Mira.fpi (Lazy.force direct) ~fname:"saxpy_chain"
      ~env:[ ("n", n); ("reps", 2) ]

let pool_tests =
  let open Alcotest in
  [
    test_case "a pooled sweep merges in input order under pipelining" `Quick
      (fun () ->
        let (), _ =
          with_server
            ~cfg:(fun c ->
              (* every eval stalls 60 ms while pings fly through, so
                 wire completions arrive out of input order; the sweep
                 must still merge positionally *)
              {
                c with
                Serve.cfg_faults = Some (faults ~slow:1.0 ~slow_ms:60 ());
              })
            (fun ~socket _server ->
              Client.with_endpoint ~io_timeout_ms:15000
                (Endpoint.Unix_sock socket) (fun pool ->
                  let results =
                    Client.sweep pool
                      [ eval_req 8; eval_req 16; Serve.Ping; eval_req 24 ]
                  in
                  match results with
                  | [ Ok r0; Ok r1; Ok r2; Ok r3 ] ->
                      check (float 1e-6) "slot 0" (expected_fpi 8)
                        (float_of_field r0 "fpi");
                      check (float 1e-6) "slot 1" (expected_fpi 16)
                        (float_of_field r1 "fpi");
                      check bool "slot 2 is the ping" true
                        (Serve.field r2 "pong" <> None);
                      check (float 1e-6) "slot 3" (expected_fpi 24)
                        (float_of_field r3 "fpi")
                  | rs ->
                      failf "sweep returned %d results, some failed"
                        (List.length rs)))
        in
        ());
    test_case "pool failover mid-sweep loses and duplicates nothing" `Quick
      (fun () ->
        let sock_a = temp_name "mira-pool-a" ^ ".sock" in
        let sock_b = temp_name "mira-pool-b" ^ ".sock" in
        let mk sock =
          let server =
            Serve.create
              {
                (Serve.default_config ~socket:sock) with
                cfg_max_inflight = 16;
                cfg_faults = Some (faults ~slow:1.0 ~slow_ms:80 ());
              }
          in
          let th =
            Thread.create (fun () -> ignore (Serve.serve server)) ()
          in
          (server, th)
        in
        let a, th_a = mk sock_a in
        let b, th_b = mk sock_b in
        Fun.protect
          ~finally:(fun () ->
            Serve.stop a;
            Serve.stop b;
            Thread.join th_a;
            Thread.join th_b;
            List.iter
              (fun s -> try Sys.remove s with Sys_error _ -> ())
              [ sock_a; sock_b ])
          (fun () ->
            check bool "A up" true (Serve.wait_ready sock_a);
            check bool "B up" true (Serve.wait_ready sock_b);
            let ns = [ 8; 12; 16; 20; 24; 28; 32; 36 ] in
            Client.with_pool ~io_timeout_ms:15000 ~max_inflight:2
              [ Endpoint.Unix_sock sock_a; Endpoint.Unix_sock sock_b ]
              (fun pool ->
                let results = ref [] in
                let sweeper =
                  Thread.create
                    (fun () ->
                      results := Client.sweep pool (List.map eval_req ns))
                    ()
                in
                (* several evals are stalled in the 80 ms worker fault
                   when A dies; the pool must finish everything on B,
                   retrying whatever A never answered *)
                Unix.sleepf 0.12;
                Serve.stop a;
                Thread.join sweeper;
                check int "no result lost or duplicated" (List.length ns)
                  (List.length !results);
                List.iteri
                  (fun i (n, r) ->
                    match r with
                    | Ok (resp : Serve.response) ->
                        check string (Printf.sprintf "result %d ok" i) "ok"
                          resp.rs_status;
                        check (float 1e-6)
                          (Printf.sprintf "result %d in input order" i)
                          (expected_fpi n)
                          (float_of_field resp "fpi")
                    | Error m -> failf "result %d: %s" i m)
                  (List.combine ns !results))));
    test_case "shutdown is never retried onto another endpoint" `Quick
      (fun () ->
        List.iter
          (fun (req, expect) ->
            check bool "idempotence classification" expect
              (Client.idempotent req))
          [
            (Serve.Ping, true);
            (Serve.Stats, true);
            (analyze (), true);
            (eval_req 8, true);
            (Serve.Shutdown, false);
          ];
        let (), final =
          with_server (fun ~socket _server ->
              (* the dead endpoint sits first in round-robin order, so
                 the shutdown's one and only attempt lands there *)
              let dead = Endpoint.Unix_sock (temp_name "mira-dead" ^ ".sock") in
              Client.with_pool ~retries:2
                [ dead; Endpoint.Unix_sock socket ]
                (fun pool ->
                  (match Client.request pool Serve.Shutdown with
                  | Error _ -> ()
                  | Ok _ -> fail "shutdown reached a daemon it was not sent to");
                  (* idempotent verbs from the same pool do fail over *)
                  match Client.request pool Serve.Ping with
                  | Ok r -> check string "ping fails over" "ok" r.rs_status
                  | Error m -> failf "ping: %s" m);
              (* the live daemon never saw the shutdown *)
              ping_ok socket)
        in
        check bool "daemon survived to the end of the test" true
          (final.Serve.sv_served >= 2));
  ]

let () =
  Alcotest.run "serve"
    [
      ("codec", codec_tests);
      ("endpoints", endpoint_tests);
      ("protocol-fuzz", fuzz_tests);
      ("requests", request_tests);
      ("pipelining", pipeline_tests);
      ("tcp-transport", transport_tests);
      ("client-pool", pool_tests);
      ("budget-isolation", budget_isolation_tests);
      ("wire-faults", wire_tests);
      ("overload", overload_tests);
      ("shutdown", shutdown_tests);
      ("cache-locking", locking_tests);
    ]
