(* Differential fuzz oracle (the safety net under the parallel batch
   driver): for seeded random mini-C programs drawn from the statically
   analyzable fragment — nested for loops with affine dependent bounds,
   ifs in loop bodies, helper calls, int and double arrays — the static
   per-mnemonic model evaluated at concrete sizes must equal the VM's
   dynamic counts exactly.

   Unlike test_endtoend's string generator, programs here are built as
   a small structural IR so a failing case can be shrunk: the harness
   greedily deletes loop nests, statements and if-wrappers while the
   mismatch persists, then prints the minimal offending source.

   The seed is fixed (reproducible in CI); set MIRA_FUZZ_SEED to
   explore other streams locally.

   The program IR, renderer and generator live in {!Kernelgen} (shared
   with test_incremental). *)

open Kernelgen

let margin = 64 (* array slack beyond the largest generated index *)

(* ---------- the oracle ---------- *)

let check_kernel src n =
  let m = Mira_core.Mira.analyze ~source_name:"fuzz.mc" src in
  let static = Mira_core.Mira.counts m ~fname:"kern" ~env:[ ("n", n) ] in
  let vm = Mira_vm.Vm.load_object m.input.object_bytes in
  let size = n + margin in
  let a = Mira_vm.Vm.alloc_floats vm (Array.make size 1.0) in
  let b = Mira_vm.Vm.alloc_floats vm (Array.make size 2.0) in
  let p = Mira_vm.Vm.alloc_ints vm (Array.make size 3) in
  ignore (Mira_vm.Vm.call vm "kern" [ Int a; Int b; Int p; Int n ]);
  let prof = Option.get (Mira_vm.Vm.profile_of vm "kern") in
  let mns =
    List.sort_uniq compare
      (List.map fst static @ List.map fst prof.Mira_vm.Vm.inclusive)
  in
  List.filter_map
    (fun mn ->
      let s = Mira_core.Model_eval.count static mn in
      let d = float_of_int (Mira_vm.Vm.count_of prof mn) in
      if s <> d then Some (mn, s, d) else None)
    mns

let fails k n =
  match check_kernel (render k) n with
  | [] -> false
  | _ :: _ -> true
  | exception _ ->
      (* a generator bug, not a model bug: don't shrink into it *)
      false

(* ---------- shrinking ---------- *)

(* One-step reductions: drop a whole top-level nest, drop a statement
   anywhere, or unwrap an if (keep its body).  Loop removal only at
   nest granularity keeps every variable reference well-scoped. *)
let rec shrink_stmts stmts =
  let drops =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) stmts) stmts
  in
  let inner =
    List.concat
      (List.mapi
         (fun i s ->
           match s with
           | Ifblk (c, body) ->
               (* unwrap *)
               (List.filteri (fun j _ -> j <> i) stmts
               @ body)
               :: List.map
                    (fun body' ->
                      List.mapi
                        (fun j s' -> if j = i then Ifblk (c, body') else s')
                        stmts)
                    (shrink_stmts body)
           | _ -> [])
         stmts)
  in
  drops @ inner

let rec shrink_nodes nodes =
  let drops =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) nodes) nodes
  in
  let inner =
    List.concat
      (List.mapi
         (fun i nd ->
           let replace nd' =
             List.mapi (fun j x -> if j = i then nd' else x) nodes
           in
           match nd with
           | Body stmts -> List.map (fun s -> replace (Body s)) (shrink_stmts stmts)
           | Loop l ->
               List.map
                 (fun b -> replace (Loop { l with lbody = b }))
                 (shrink_nodes l.lbody))
         nodes)
  in
  drops @ inner

let shrink_kernel k = List.map (fun nodes -> { nodes }) (shrink_nodes k.nodes)

let minimize k n =
  let rec go k =
    match List.find_opt (fun k' -> fails k' n) (shrink_kernel k) with
    | Some smaller -> go smaller
    | None -> k
  in
  go k

(* ---------- the suite ---------- *)

let seed =
  match Sys.getenv_opt "MIRA_FUZZ_SEED" with
  | Some s -> int_of_string s
  | None -> 20260806

let differential_tests =
  let open Alcotest in
  let run_fuzz count =
    let rng = Random.State.make [| seed |] in
    for case = 1 to count do
      let k = gen_kernel rng in
      let n = 5 + Random.State.int rng 9 in
      match check_kernel (render k) n with
      | [] -> ()
      | mismatches ->
          let small = minimize k n in
          let small_mismatches =
            try check_kernel (render small) n with _ -> mismatches
          in
          failf
            "case %d (seed %d, n=%d): static/dynamic mismatch\n\
             shrunk source:\n%s\nmismatches: %s"
            case seed n (render small)
            (String.concat "; "
               (List.map
                  (fun (mn, s, d) ->
                    Printf.sprintf "%s static=%.0f dyn=%.0f" mn s d)
                  (if small_mismatches = [] then mismatches
                   else small_mismatches)))
      | exception e ->
          failf "case %d (seed %d, n=%d): analysis raised %s\nsource:\n%s"
            case seed n (Printexc.to_string e) (render k)
    done
  in
  [
    test_case "200 generated programs: static = dynamic exactly" `Quick
      (fun () -> run_fuzz 200);
  ]

let shrinker_tests =
  let open Alcotest in
  [
    test_case "shrinker only proposes well-formed programs" `Quick (fun () ->
        (* every one-step reduction of 30 random kernels must still
           parse, typecheck, compile and run *)
        let rng = Random.State.make [| 4242 |] in
        for _ = 1 to 30 do
          let k = gen_kernel rng in
          List.iter
            (fun k' ->
              let src = render k' in
              match check_kernel src 6 with
              | _ -> ()
              | exception e ->
                  failf "shrink produced a broken program (%s):\n%s"
                    (Printexc.to_string e) src)
            (shrink_kernel k)
        done);
    test_case "shrinker reaches a fixpoint on a planted failure" `Quick
      (fun () ->
        (* a fake oracle that "fails" whenever a marker statement is
           present must shrink to just that marker *)
        let marker = Istmt "t++;" in
        let has_marker k =
          let rec in_stmt = function
            | Istmt "t++;" -> true
            | Ifblk (_, b) -> List.exists in_stmt b
            | _ -> false
          in
          let rec in_node = function
            | Body b -> List.exists in_stmt b
            | Loop l -> List.exists in_node l.lbody
          in
          List.exists in_node k.nodes
        in
        let k =
          {
            nodes =
              [
                Loop
                  {
                    lvar = "i0";
                    llo = "0";
                    lhi = "n - 1";
                    lbody =
                      [
                        Body
                          [
                            Dstmt "s += a[i0] * 1.5;";
                            Ifblk (Cmp ("i0", ">", "2"), [ marker ]);
                            Dstmt "s = s + b[i0] / 4.0;";
                          ];
                      ];
                  };
                Body [ Istmt "t += p[0] + 0;" ];
              ];
          }
        in
        let rec go k =
          match List.find_opt has_marker (shrink_kernel k) with
          | Some smaller -> go smaller
          | None -> k
        in
        let minimal = go k in
        let count =
          let rec stmts_of_node = function
            | Body b -> List.length b
            | Loop l ->
                List.fold_left (fun a nd -> a + stmts_of_node nd) 0 l.lbody
          in
          List.fold_left (fun a nd -> a + stmts_of_node nd) 0 minimal.nodes
        in
        check bool "still contains the marker" true (has_marker minimal);
        check int "exactly the marker survives" 1 count);
  ]

let () =
  Alcotest.run "differential"
    [ ("fuzz-oracle", differential_tests); ("shrinker", shrinker_tests) ]
