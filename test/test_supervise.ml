(* The self-healing fleet, exercised end to end:

   - crash-consistent publish: forked children run cache-backed
     batches with the seeded crash site armed (self-SIGKILL between
     write, fsync and rename inside every durable_publish); after each
     death the recovery scan must find {e zero} torn published entries
     — fsync-before-rename means a published name is never over torn
     bytes — and a warm run against the survivor cache must be
     byte-identical to an undisturbed one;
   - supervisor: a child that exits immediately trips the per-child
     restart-storm breaker; a child that runs but never answers
     [health] is wedge-killed and restarted until the breaker trips;
     [stop] drains the fleet and returns [Drained];
   - client breakers: repeated failures open an endpoint's circuit,
     and once a daemon appears there the elapsed-cooldown half-open
     probe closes it again ([bk_reopened]); a hedged request beats a
     stalled daemon through the second endpoint ([bk_hedge_wins]);
   - coordinator revival: an endpoint dead at sweep start is lost
     ([co_daemons_lost]), then revived by its half-open probe when a
     daemon comes up mid-sweep, and rejoins ([co_revived]) — every
     binding still answered exactly once;
   - the supervised fleet, over real processes: [mira supervise] runs
     three daemons; one is SIGKILLed mid-sweep and then SIGKILLed
     again after its restart; both generations are respawned, the
     sweeps complete exactly-once and byte-identical to a
     single-daemon run, and the twice-restarted child observably
     serves; SIGTERM drains the whole tree with exit 0;
   - cache merge vs a live batch writer racing on one DST (real
     cross-process lock interplay), merged result fully warm and
     byte-identical;
   - CLI: [eval-sweep --pipeline] (deprecated through PR 9, removed
     in PR 10) is rejected as an unknown option; [supervise] refuses
     an unprobeable [tcp:...:0] endpoint. *)

open Mira_core

let seed =
  match Sys.getenv_opt "MIRA_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "MIRA_FAULT_SEED must be an integer")
  | None -> 20260806

let temp_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mira_exe = Filename.concat (Filename.concat ".." "bin") "mira.exe"
let saxpy = Option.get (Mira_corpus.Corpus.find "saxpy")
let stream = Option.get (Mira_corpus.Corpus.find "stream")

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = find_sub s sub <> None

let wait_for ?(timeout_s = 20.0) msg pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if not (pred ()) then
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "timed out waiting for %s" msg
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

let wait_exit ?(timeout_s = 30.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "subprocess did not exit in time"
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, st -> st
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        (* already reaped by an earlier wait *)
        Unix.WEXITED 0
  in
  go ()

let kill_pid pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let spawn_capture argv out_file err_file =
  let out =
    Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let err =
    Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close out;
      Unix.close err;
      Unix.close devnull)
    (fun () -> Unix.create_process argv.(0) argv devnull out err)

(* ---------- crash-consistent publish ---------- *)

let batch_sources = [
  { Batch.src_name = "saxpy.mc"; src_text = saxpy };
  { Batch.src_name = "stream.mc"; src_text = stream };
]

let crash_tests =
  let open Alcotest in
  [
    test_case
      "seeded crash-injected publishes leave zero torn entries after recovery"
      `Slow (fun () ->
        Batch.set_fsync true;
        let reference, _ = Batch.run batch_sources in
        let children = 80 in
        let crashed = ref 0 and survived = ref 0 in
        for i = 0 to children - 1 do
          let dir = temp_name (Printf.sprintf "mira-crash-%d" i) in
          (match Unix.fork () with
          | 0 ->
              (* the child arms its own crash schedule: a deterministic
                 seed picks which publish point (tmp-written /
                 tmp-synced / renamed) dies, exactly as a power cut
                 would — no unwind, no flush *)
              Faults.set_crash ~seed:(seed + i) 0.15;
              (try
                 ignore
                   (Batch.run ~cache:(Batch.create_cache ~dir ()) batch_sources)
               with _ -> ());
              Unix._exit 0
          | pid -> (
              match snd (Unix.waitpid [] pid) with
              | Unix.WSIGNALED s when s = Sys.sigkill -> incr crashed
              | Unix.WEXITED 0 -> incr survived
              | st ->
                  failf "crash child %d: unexpected status %s" i
                    (match st with
                    | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                    | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)));
          (* the recovery scan must find nothing torn: every published
             name covers fully-synced bytes, whatever point the child
             died at *)
          if Sys.file_exists dir then begin
            let rs = Batch.recover_dir dir in
            check int
              (Printf.sprintf "child %d: zero torn entries" i)
              0 rs.Batch.rc_quarantined
          end;
          (* and the survivor cache serves a correct continuation: the
             warm run completes whatever the crash cut short,
             byte-identical to the undisturbed reference *)
          let cache = Batch.create_cache ~dir () in
          let warm, _ = Batch.run ~cache batch_sources in
          List.iter2
            (fun r w ->
              match (r, w) with
              | Ok (ra : Batch.analysis), Ok wa ->
                  check string "byte-identical python" ra.Batch.a_python
                    wa.Batch.a_python
              | _ -> fail "warm run failed after crash recovery")
            reference warm;
          check int
            (Printf.sprintf "child %d: no corrupt reads" i)
            0 (Batch.cache_health cache).Batch.h_corrupt;
          rm_rf dir
        done;
        (* the schedule must actually have bitten: a harness where no
           child ever dies is testing nothing *)
        check bool "some children crashed mid-publish" true (!crashed >= 5);
        check int "every child accounted for" children (!crashed + !survived));
  ]

(* ---------- supervisor policy, in-process ---------- *)

let dead_ep () = Endpoint.Unix_sock (temp_name "mira-sup-dead" ^ ".sock")

let quiet_config ~children =
  { (Supervisor.default_config ~children) with sp_log = ignore }

let supervisor_tests =
  let open Alcotest in
  [
    test_case "a child that can never come up trips the storm breaker" `Quick
      (fun () ->
        let children =
          [
            {
              Supervisor.cs_name = "flappy";
              cs_argv = [| "/bin/false" |];
              cs_endpoint = dead_ep ();
            };
          ]
        in
        let cfg =
          {
            (quiet_config ~children) with
            sp_backoff_base_ms = 10;
            sp_backoff_max_ms = 40;
            sp_storm_failures = 3;
          }
        in
        let t = Supervisor.create cfg in
        (match Supervisor.run t with
        | Supervisor.Storm name -> check string "names the child" "flappy" name
        | Supervisor.Drained -> fail "an unstartable child drained cleanly");
        let st = Supervisor.stats t in
        check int "three generations spawned" 3 st.Supervisor.su_spawns;
        check int "restarts before giving up" 2 st.Supervisor.su_restarts;
        check int "one storm" 1 st.Supervisor.su_storms);
    test_case "a running-but-unready child is wedge-killed" `Quick (fun () ->
        let children =
          [
            {
              Supervisor.cs_name = "wedged";
              cs_argv = [| "/bin/sleep"; "60" |];
              cs_endpoint = dead_ep ();
            };
          ]
        in
        let cfg =
          {
            (quiet_config ~children) with
            sp_probe_interval_ms = 50;
            sp_wedge_timeout_ms = 250;
            sp_backoff_base_ms = 10;
            sp_backoff_max_ms = 40;
            sp_storm_failures = 2;
          }
        in
        let t = Supervisor.create cfg in
        (match Supervisor.run t with
        | Supervisor.Storm name -> check string "names the child" "wedged" name
        | Supervisor.Drained -> fail "a wedged child drained cleanly");
        let st = Supervisor.stats t in
        check int "both generations wedge-killed" 2 st.Supervisor.su_wedge_kills);
    test_case "stop drains the fleet" `Quick (fun () ->
        let children =
          [
            {
              Supervisor.cs_name = "drainee";
              cs_argv = [| "/bin/sleep"; "60" |];
              cs_endpoint = dead_ep ();
            };
          ]
        in
        let cfg =
          {
            (quiet_config ~children) with
            sp_wedge_timeout_ms = 60_000;
            sp_grace_ms = 3_000;
          }
        in
        let t = Supervisor.create cfg in
        let outcome = ref Supervisor.Drained in
        let th = Thread.create (fun () -> outcome := Supervisor.run t) () in
        Unix.sleepf 0.3;
        Supervisor.stop t;
        Thread.join th;
        (match !outcome with
        | Supervisor.Drained -> ()
        | Supervisor.Storm _ -> fail "clean stop reported a storm");
        check int "one spawn, no restarts" 1 (Supervisor.stats t).Supervisor.su_spawns);
  ]

(* ---------- in-process daemon harness ---------- *)

let with_daemon ?(cfg = fun c -> c) ?(wait = true) endpoints f =
  let config = cfg (Serve.default_config_endpoints ~endpoints) in
  let server = Serve.create config in
  let th = Thread.create (fun () -> ignore (Serve.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      List.iter
        (function
          | Endpoint.Unix_sock p -> ( try Sys.remove p with Sys_error _ -> ())
          | Endpoint.Tcp _ -> ())
        endpoints)
    (fun () ->
      let eps = Serve.bound_endpoints server in
      if wait then
        Alcotest.(check bool)
          "daemon is up" true
          (Client.wait_ready (List.hd eps));
      f ~eps server)

let unix_ep () = Endpoint.Unix_sock (temp_name "mira-supervise" ^ ".sock")

(* ---------- client circuit breakers ---------- *)

let breaker_tests =
  let open Alcotest in
  [
    test_case "the half-open probe closes a revived endpoint's circuit"
      `Quick (fun () ->
        let sock = temp_name "mira-breaker" ^ ".sock" in
        let ep = Endpoint.Unix_sock sock in
        let pool = Client.create ~io_timeout_ms:2_000 [ ep ] in
        Fun.protect
          ~finally:(fun () -> Client.close pool)
          (fun () ->
            (* nothing listening: consecutive connect failures must trip
               the breaker open *)
            (match Client.request pool Serve.Ping with
            | Error _ -> ()
            | Ok _ -> fail "a dead endpoint answered");
            let st = Client.breaker_stats pool in
            check int "circuit open" 1 st.Client.bk_open;
            check int "nothing reopened yet" 0 st.Client.bk_reopened;
            (* revive the endpoint, outlive the first-trip cooldown
               (0.5 s), and the next request must ride the half-open
               probe and close the circuit *)
            with_daemon [ ep ] (fun ~eps:_ _server ->
                Unix.sleepf 0.6;
                (match Client.request pool Serve.Ping with
                | Ok r -> check string "probe served" "ok" r.Serve.rs_status
                | Error m -> failf "half-open probe failed: %s" m);
                let st = Client.breaker_stats pool in
                check int "circuit closed again" 1 st.Client.bk_closed;
                check int "reopen counted" 1 st.Client.bk_reopened)));
    test_case "a hedged request beats a stalled daemon" `Quick (fun () ->
        let stall =
          { Faults.none with Faults.seed; slow_p = 1.0; slow_ms = 800 }
        in
        let slow_ep = unix_ep () and fast_ep = unix_ep () in
        with_daemon ~wait:false
          ~cfg:(fun c -> { c with Serve.cfg_faults = Some stall })
          [ slow_ep ]
          (fun ~eps:_ _slow ->
            with_daemon [ fast_ep ] (fun ~eps:_ _fast ->
                (* round-robin starts at the slow daemon; the hedge
                   fires after 50 ms and the fast daemon answers it
                   long before the 800 ms stall releases the primary *)
                Client.with_pool ~hedge_ms:50 ~io_timeout_ms:5_000
                  [ slow_ep; fast_ep ]
                  (fun pool ->
                    (match Client.request pool Serve.Ping with
                    | Ok r -> check string "answered" "ok" r.Serve.rs_status
                    | Error m -> failf "hedged ping: %s" m);
                    let st = Client.breaker_stats pool in
                    check int "hedge fired" 1 st.Client.bk_hedges;
                    check int "hedge won" 1 st.Client.bk_hedge_wins))));
  ]

(* ---------- coordinator revival ---------- *)

let coordinator_bindings n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        { Coordinator.bd_name = "saxpy"; bd_source = saxpy;
          bd_function = "saxpy_chain";
          bd_params = [ ("n", 10 + i); ("reps", 2) ] }
      else
        { Coordinator.bd_name = "stream"; bd_source = stream;
          bd_function = "stream_triad"; bd_params = [ ("n", 100 + (10 * i)) ] })

let ok_key r =
  match r with
  | Ok resp ->
      Printf.sprintf "%s fpi=%s total=%s" resp.Serve.rs_status
        (Option.value (Serve.field resp "fpi") ~default:"?")
        (Option.value (Serve.field resp "total") ~default:"?")
  | Error m -> "error " ^ m

let revival_tests =
  let open Alcotest in
  [
    test_case "a daemon arriving mid-sweep revives its lost endpoint" `Slow
      (fun () ->
        (* one slow-but-live daemon carries the sweep; the second
           endpoint is dead at start, so its worker opens the circuit
           (co_daemons_lost) and half-open probes.  A daemon started
           there mid-sweep — exactly what the supervisor does after a
           restart — must revive the endpoint and rejoin. *)
        let stall =
          { Faults.none with Faults.seed; slow_p = 1.0; slow_ms = 20 }
        in
        let live_ep = unix_ep () in
        let late_sock = temp_name "mira-late" ^ ".sock" in
        let late_ep = Endpoint.Unix_sock late_sock in
        with_daemon ~wait:false
          ~cfg:(fun c -> { c with Serve.cfg_faults = Some stall })
          [ live_ep ]
          (fun ~eps:_ _slow ->
            let late = ref None in
            let starter =
              Thread.create
                (fun () ->
                  Unix.sleepf 0.5;
                  let server =
                    Serve.create
                      (Serve.default_config_endpoints ~endpoints:[ late_ep ])
                  in
                  let th =
                    Thread.create (fun () -> ignore (Serve.serve server)) ()
                  in
                  late := Some (server, th))
                ()
            in
            let n = 200 in
            let results, stats =
              Coordinator.run ~chunk:4 ~retries:1 ~backoff_ms:20
                [ live_ep; late_ep ]
                (coordinator_bindings n)
            in
            Thread.join starter;
            let server, th = Option.get !late in
            Fun.protect
              ~finally:(fun () ->
                Serve.stop server;
                Thread.join th;
                try Sys.remove late_sock with Sys_error _ -> ())
              (fun () ->
                check int "every binding answered" n
                  stats.Coordinator.co_finished;
                check (list int) "none unfinished" []
                  stats.Coordinator.co_unfinished;
                check int "the dead endpoint was lost" 1
                  stats.Coordinator.co_daemons_lost;
                check int "and revived" 1 stats.Coordinator.co_revived;
                check int "no duplicates" 0 stats.Coordinator.co_duplicates;
                Array.iter
                  (fun r ->
                    match r with
                    | Ok resp ->
                        check string "answered ok" "ok" resp.Serve.rs_status
                    | Error m -> failf "binding lost: %s" m)
                  results)));
  ]

(* ---------- the supervised fleet, over real processes ---------- *)

let spawned_pids err_file name =
  if not (Sys.file_exists err_file) then []
  else
    let marker = name ^ ": spawned pid " in
    read_file err_file |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           match find_sub line marker with
           | None -> None
           | Some i ->
               let rest =
                 String.sub line
                   (i + String.length marker)
                   (String.length line - i - String.length marker)
               in
               let digits =
                 match String.index_opt rest ' ' with
                 | Some j -> String.sub rest 0 j
                 | None -> rest
               in
               int_of_string_opt digits)

let fleet_tests =
  let open Alcotest in
  [
    test_case
      "a supervised fleet survives a child SIGKILLed twice, exactly-once"
      `Slow (fun () ->
        let socks =
          List.init 3 (fun i ->
              temp_name (Printf.sprintf "mira-fleet-%d" i) ^ ".sock")
        in
        let eps = List.map (fun s -> Endpoint.Unix_sock s) socks in
        let sup_out = temp_name "mira-sup-out" in
        let sup_err = temp_name "mira-sup-err" in
        let argv =
          Array.of_list
            ([ mira_exe; "supervise" ]
            @ List.concat_map (fun s -> [ "-e"; "unix:" ^ s ]) socks
            @ [
                "--probe-interval-ms"; "100"; "--backoff-ms"; "50";
                "--serve-arg=--workers"; "--serve-arg=4";
              ])
        in
        let sup_pid = spawn_capture argv sup_out sup_err in
        Fun.protect
          ~finally:(fun () ->
            kill_pid sup_pid;
            ignore (wait_exit sup_pid);
            List.iter kill_pid (spawned_pids sup_err "serve-0");
            List.iter kill_pid (spawned_pids sup_err "serve-1");
            List.iter kill_pid (spawned_pids sup_err "serve-2");
            List.iter
              (fun s -> try Sys.remove s with Sys_error _ -> ())
              socks;
            List.iter
              (fun f -> try Sys.remove f with Sys_error _ -> ())
              [ sup_out; sup_err ])
          (fun () ->
            List.iter
              (fun ep ->
                check bool "daemon is up" true
                  (Client.wait_ready ~timeout_s:20.0 ep))
              eps;
            let victim_gen1 =
              match spawned_pids sup_err "serve-0" with
              | pid :: _ -> pid
              | [] -> fail "supervisor never logged serve-0's pid"
            in
            let n = 400 in
            let bindings = coordinator_bindings n in
            (* kill #1: from the progress callback, guaranteed
               mid-sweep; the survivors absorb the re-dispatch while
               the supervisor respawns the victim *)
            let killed = Atomic.make false in
            let on_progress ~finished ~total:_ =
              if finished >= 40 && not (Atomic.exchange killed true) then
                kill_pid victim_gen1
            in
            let results1, stats1 =
              Coordinator.run ~chunk:16 ~heartbeat_ms:500 ~backoff_ms:50
                ~on_progress eps bindings
            in
            check bool "victim killed mid-sweep" true (Atomic.get killed);
            check int "sweep 1: every binding answered" n
              stats1.Coordinator.co_finished;
            check (list int) "sweep 1: none unfinished" []
              stats1.Coordinator.co_unfinished;
            check int "sweep 1: no duplicates" 0
              stats1.Coordinator.co_duplicates;
            (* the supervisor must respawn generation 2; then kill it
               too, and demand generation 3 *)
            wait_for "serve-0 restart #1" (fun () ->
                List.length (spawned_pids sup_err "serve-0") >= 2);
            let victim_gen2 = List.nth (spawned_pids sup_err "serve-0") 1 in
            check bool "a fresh pid" true (victim_gen2 <> victim_gen1);
            check bool "restarted child is up" true
              (Client.wait_ready ~timeout_s:20.0 (List.hd eps));
            kill_pid victim_gen2;
            wait_for "serve-0 restart #2" (fun () ->
                List.length (spawned_pids sup_err "serve-0") >= 3);
            check bool "twice-restarted child is up" true
              (Client.wait_ready ~timeout_s:20.0 (List.hd eps));
            (* sweep 2 across the healed fleet: byte-identical to a
               single-daemon run, and the restarted child serves *)
            let results2, stats2 =
              Coordinator.run ~chunk:16 ~heartbeat_ms:500 eps bindings
            in
            check int "sweep 2: every binding answered" n
              stats2.Coordinator.co_finished;
            check int "sweep 2: no endpoints lost" 0
              stats2.Coordinator.co_daemons_lost;
            let reference, _ =
              Coordinator.run ~chunk:16 [ List.nth eps 1 ] bindings
            in
            check (list string) "sweep 1 identical to a single-daemon run"
              (Array.to_list (Array.map ok_key reference))
              (Array.to_list (Array.map ok_key results1));
            check (list string) "sweep 2 identical to a single-daemon run"
              (Array.to_list (Array.map ok_key reference))
              (Array.to_list (Array.map ok_key results2));
            (* generation 3 is observably serving: ready, and answering *)
            let fd = Endpoint.connect ~io_timeout_ms:2_000 (List.hd eps) in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                match Serve.roundtrip fd Serve.Health with
                | Ok r ->
                    check (option string) "generation 3 is ready"
                      (Some "ready") (Serve.field r "state")
                | Error m -> failf "health on the restarted child: %s" m);
            (* the supervisor's own log recorded the restarts *)
            check bool "restarts logged" true
              (contains (read_file sup_err) "restarting in");
            (* SIGTERM drains the whole tree cleanly *)
            Unix.kill sup_pid Sys.sigterm;
            (match wait_exit sup_pid with
            | Unix.WEXITED 0 -> ()
            | Unix.WEXITED c -> failf "supervise exited %d" c
            | _ -> fail "supervise did not exit normally");
            check bool "summary printed" true
              (contains (read_file sup_out) "mira supervise:")));
  ]

(* ---------- cache merge vs a live batch writer ---------- *)

let merge_race_tests =
  let open Alcotest in
  [
    test_case "cache merge races a live batch writer on the same DST" `Slow
      (fun () ->
        (* content addressing: a trailing newline is a distinct source
           (and cache entry) that analyzes identically *)
        let variant pad s = { s with Batch.src_text = s.Batch.src_text ^ pad } in
        let live = batch_sources @ List.map (variant "\n") batch_sources in
        let merged = List.map (variant "\n\n") batch_sources in
        let all = live @ merged in
        let cold, _ = Batch.run all in
        let src_dir = temp_name "mira-race-src" in
        let dst = temp_name "mira-race-dst" in
        let input_dir = temp_name "mira-race-in" in
        Sys.mkdir input_dir 0o755;
        List.iteri
          (fun i s ->
            write_file
              (Filename.concat input_dir (Printf.sprintf "v%d_%s" i s.Batch.src_name))
              s.Batch.src_text)
          live;
        ignore (Batch.run ~cache:(Batch.create_cache ~dir:src_dir ()) merged);
        (* a real second process writes DST while we merge into it:
           cross-process lock interplay, not thread-local lockf noise *)
        let out = temp_name "mira-race-out" in
        let pid =
          spawn_capture
            [|
              mira_exe; "batch"; input_dir; "--cache"; "--cache-dir"; dst;
              "--faults"; Printf.sprintf "seed=%d,slow=1,slow_ms=80" seed;
            |]
            out out
        in
        Fun.protect
          ~finally:(fun () ->
            kill_pid pid;
            ignore (wait_exit pid);
            List.iter rm_rf [ src_dir; dst; input_dir ];
            try Sys.remove out with Sys_error _ -> ())
          (fun () ->
            Unix.sleepf 0.1;
            let mg = Batch.merge_dirs ~dst [ src_dir ] in
            check bool "merge copied the other shard" true
              (mg.Batch.mg_copied > 0);
            check int "merge failed nothing" 0 mg.Batch.mg_failed;
            (match wait_exit pid with
            | Unix.WEXITED 0 -> ()
            | Unix.WEXITED c -> failf "live batch writer exited %d" c
            | _ -> fail "live batch writer died");
            (* the union must now serve a fully warm, byte-identical
               run: nothing the two writers raced on was lost or torn *)
            let warm, wstats =
              Batch.run ~cache:(Batch.create_cache ~dir:dst ()) all
            in
            check int "fully warm" 0 wstats.Batch.st_analyzed;
            check int "every source a disk hit" (List.length all)
              wstats.Batch.st_disk_hits;
            List.iter2
              (fun c w ->
                match (c, w) with
                | Ok (ca : Batch.analysis), Ok wa ->
                    check string "byte-identical python" ca.Batch.a_python
                      wa.Batch.a_python
                | _ -> fail "warm run failed where cold run succeeded")
              cold warm));
  ]

(* ---------- CLI contracts ---------- *)

let cli_tests =
  let open Alcotest in
  [
    test_case "eval-sweep --pipeline is gone: rejected as unknown" `Quick
      (fun () ->
        (* deprecated-with-warning through PR 9, removed in PR 10: the
           flag must now fail loudly instead of silently doing nothing *)
        let dir = temp_name "mira-dep" in
        Sys.mkdir dir 0o755;
        let src = Filename.concat dir "saxpy.mc" in
        write_file src saxpy;
        let sweep = Filename.concat dir "sweep.txt" in
        write_file sweep (Printf.sprintf "%s saxpy_chain n=16 reps=2\n" src);
        let out = Filename.concat dir "out" and err = Filename.concat dir "err" in
        let pid =
          spawn_capture
            [|
              mira_exe; "eval-sweep"; sweep; "--pipeline"; "4"; "-e";
              "unix:" ^ Filename.concat dir "nothing.sock";
              "--dispatch-retries"; "0"; "--heartbeat-ms"; "100";
            |]
            out err
        in
        (match wait_exit pid with
        | Unix.WEXITED c when c <> 0 -> ()
        | Unix.WEXITED 0 -> fail "expected a usage error exit, got 0"
        | _ -> fail "eval-sweep died on a signal");
        let err_text = read_file err in
        check bool "names the unknown option" true
          (contains err_text "pipeline");
        rm_rf dir);
    test_case "supervise refuses an unprobeable tcp:...:0 endpoint" `Quick
      (fun () ->
        let out = temp_name "mira-sup0-out" in
        let pid =
          spawn_capture
            [| mira_exe; "supervise"; "-e"; "tcp:127.0.0.1:0" |]
            out out
        in
        (match wait_exit pid with
        | Unix.WEXITED 124 -> ()
        | Unix.WEXITED c -> failf "expected usage exit 124, got %d" c
        | _ -> fail "supervise did not exit normally");
        check bool "explains why" true (contains (read_file out) "port 0");
        try Sys.remove out with Sys_error _ -> ());
  ]

let () =
  Alcotest.run "mira supervise"
    [
      ("crash-consistent publish", crash_tests);
      ("supervisor", supervisor_tests);
      ("breakers", breaker_tests);
      ("revival", revival_tests);
      ("supervised fleet", fleet_tests);
      ("merge race", merge_race_tests);
      ("cli", cli_tests);
    ]
